"""Streaming Multiprocessor model.

Each SM runs the warps of its assigned TBs.  A warp is a simple
fetch-issue-stall machine over its trace: compute for ``gap`` cycles,
issue the memory transaction, and (for loads) stall until the response
returns.  Warps progress independently — the massive warp-level
parallelism is what keeps hundreds of requests in flight, which is the
regime the paper's entropy argument applies to.  GTO's relevant
effect, that co-resident TBs are consecutive in issue order, is
produced by the TB scheduler assigning TBs in identifier order.

The SM issues at most one memory instruction per ``issue_interval``
cycles (the coalescer port).  Issue is driven by one per-SM tick, not
per-warp events: a warp whose compute gap elapses joins the SM's ready
deque (preserving GTO age order), and a single tick callback per
``issue_interval`` drains one warp through the port/L1/MSHR logic.
Under port contention this costs one event per issue slot instead of
one retry event per waiting warp per slot.

Loads go through the per-SM L1 (write-through, no-write-allocate for
stores; allocate-on-fill with MSHR merging for loads).  L1 misses
become NoC transactions handled by the system; fills wake all merged
waiters and retry MSHR-full stalls.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Engine
from .cache import MSHRFile, MSHROutcome, SetAssociativeCache
from .config import GPUConfig
from .thread_block import TBContext, WarpContext

__all__ = ["SM", "MemRequest"]


class MemRequest:
    """An L1-miss read transaction travelling through NoC/LLC/DRAM."""

    __slots__ = ("sm_id", "line", "channel", "bank", "row", "slice", "issued_at")

    def __init__(
        self, sm_id: int, line: int, channel: int, bank: int, row: int,
        slice_id: int, issued_at: int,
    ) -> None:
        self.sm_id = sm_id
        self.line = line
        self.channel = channel
        self.bank = bank
        self.row = row
        self.slice = slice_id
        self.issued_at = issued_at

    def __repr__(self) -> str:
        return (
            f"MemRequest(sm={self.sm_id}, line=0x{self.line:x}, ch={self.channel}, "
            f"bank={self.bank}, row={self.row})"
        )


class SM:
    """One Streaming Multiprocessor with its private L1."""

    def __init__(
        self,
        engine: "Engine",
        config: GPUConfig,
        sm_id: int,
        send_read: Callable[[MemRequest], None],
        send_write: Callable[["SM", int, int, Callable, object], None],
    ) -> None:
        """*send_read* forwards an L1 miss; *send_write* takes
        ``(sm, slice_id, line, on_accepted, arg)`` for write-through
        stores — ``on_accepted(arg)`` fires when the store is accepted
        downstream (closure-free, like the engine's ``at_call``)."""
        self._engine = engine
        self._config = config
        self.sm_id = sm_id
        self._send_read = send_read
        self._send_write = send_write
        self.l1 = SetAssociativeCache(
            config.l1_sets, config.l1_ways, config.line_bytes, name=f"L1[{sm_id}]"
        )
        self.mshr = MSHRFile(config.l1_mshrs, name=f"L1-MSHR[{sm_id}]")
        self._port_free_at = 0
        # Warps whose compute gap has elapsed, waiting for the issue
        # port, in readiness (age) order.
        self._ready: Deque[WarpContext] = deque()
        # Warps parked on a full MSHR file; on_fill retries them.
        self._stalled: Deque[WarpContext] = deque()
        self._tick_armed = False
        # Pre-bound callbacks: scheduling through the engine's
        # closure-free API then allocates nothing per event.
        self._tick_cb = self._tick
        self._warp_ready_cb = self._warp_ready
        self._op_completed_cb = self._op_completed
        self.active_tbs: List[TBContext] = []
        self.on_tb_done: Optional[Callable[[TBContext], None]] = None
        # Statistics.
        self.instructions_issued = 0
        self.ops_completed = 0
        self.warp_stall_cycles = 0

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    @property
    def tb_count(self) -> int:
        return len(self.active_tbs)

    @property
    def warp_count(self) -> int:
        return sum(tb.n_warps for tb in self.active_tbs)

    @property
    def in_flight_ops(self) -> int:
        """Memory ops issued by this SM's warps and not yet completed.

        The sampled-fidelity trajectory sampler reads this as its
        issue-pressure signal: a polling segment with nothing in
        flight anywhere is ramp or drain, not steady state, and is
        excluded from the rate-drift fit.
        """
        return sum(
            warp.outstanding for tb in self.active_tbs for warp in tb.warps
        )

    def can_accept(self, tb: TBContext) -> bool:
        """Whether this SM has resources for another TB (the window bound)."""
        return (
            self.tb_count < self._config.max_tbs_per_sm
            and self.warp_count + tb.n_warps <= self._config.max_warps_per_sm
        )

    def assign_tb(self, tb: TBContext) -> None:
        """Start executing a TB on this SM."""
        if not self.can_accept(tb):
            raise RuntimeError(f"SM {self.sm_id} cannot accept TB {tb.tb_id}")
        tb.sm_id = self.sm_id
        tb.on_done = self._tb_done
        self.active_tbs.append(tb)
        started = False
        for warp in tb.warps:
            if warp.n_ops:
                started = True
                self._schedule_issue(warp)
        if not started:
            # A TB with no memory requests completes immediately.
            self._tb_done(tb)

    def _tb_done(self, tb: TBContext) -> None:
        if tb in self.active_tbs:
            self.active_tbs.remove(tb)
        if self.on_tb_done is not None:
            self.on_tb_done(tb)

    # ------------------------------------------------------------------
    # Warp issue pipeline
    # ------------------------------------------------------------------
    # A warp may keep up to ``max_outstanding_per_warp`` memory
    # instructions in flight (independent loads pipeline; the warp only
    # stalls on a dependent use).  ``warp.op`` is the next instruction
    # to issue; ``warp.outstanding`` counts issued-but-uncompleted ops;
    # ``warp.issue_pending`` marks that the warp is waiting for its
    # compute gap, sitting in the ready deque, or parked in the
    # MSHR-full queue, so completions never double-schedule.

    def _schedule_issue(self, warp: WarpContext) -> None:
        """Arrange for the warp's next op to issue after its compute gap."""
        warp.issue_pending = True
        gap = warp.gaps[warp.op]
        if gap:
            self._engine.after_call(gap, self._warp_ready_cb, warp)
        else:
            self._warp_ready(warp)

    def _warp_ready(self, warp: WarpContext) -> None:
        """The warp's compute gap elapsed: queue it for the issue port."""
        warp.ready_at = self._engine.now
        self._ready.append(warp)
        if not self._tick_armed:
            self._arm_tick()

    def _arm_tick(self) -> None:
        """Schedule the SM's next issue-port tick (at port-free time)."""
        self._tick_armed = True
        now = self._engine.now
        free = self._port_free_at
        self._engine.at_call(free if free > now else now, self._tick_cb, None)

    def _tick(self, _arg: object) -> None:
        """One issue-port slot: drain the oldest ready warp through it."""
        self._tick_armed = False
        ready = self._ready
        if not ready:
            return
        now = self._engine.now
        if self._port_free_at > now:  # pragma: no cover - defensive
            self._arm_tick()
            return
        warp = ready.popleft()
        self.warp_stall_cycles += now - warp.ready_at
        self._port_free_at = now + self._config.issue_interval
        self._issue_op(warp)
        # _issue_op may have re-armed already (a gap-0 warp re-readies
        # synchronously via _issued -> _warp_ready); arming again here
        # would stack duplicate ticks that then compound each slot.
        if ready and not self._tick_armed:
            self._arm_tick()

    def _issue_op(self, warp: WarpContext) -> None:
        """Issue the warp's next op through L1/MSHR/store logic."""
        op = warp.op
        if op >= warp.n_ops:
            # A sampled-fidelity freeze moved the cursor past the end
            # while this issue was already scheduled: nothing left to
            # issue.  Never taken in exact mode.
            warp.issue_pending = False
            warp.maybe_retire()
            return
        self.instructions_issued += 1
        line = warp.lines[op]
        if warp.writes[op]:
            # Write-through store: the warp does not wait for DRAM, but
            # the slot is held until the store is *accepted* by its LLC
            # slice (store-queue backpressure) — a congested slice port
            # therefore throttles write-heavy warps.
            self.l1.write_through(line)
            warp.outstanding += 1
            self._send_write(self, warp.slices[op], line, self._op_completed_cb, warp)
            self._issued(warp)
            return
        if self.l1.try_read(line):
            warp.outstanding += 1
            self._engine.after_call(
                self._config.l1_latency, self._op_completed_cb, warp
            )
            self._issued(warp)
            return
        self.l1.stats.count_miss(is_write=False)
        outcome = self.mshr.allocate(line, warp)
        if outcome == MSHROutcome.FULL:
            # Park the warp; on_fill retries it. issue_pending stays
            # set so completions do not schedule a duplicate issue.
            self._stalled.append(warp)
            return
        warp.outstanding += 1
        if outcome == MSHROutcome.NEW:
            self._send_read(MemRequest(
                sm_id=self.sm_id,
                line=line,
                channel=warp.channels[op],
                bank=warp.banks[op],
                row=warp.rows[op],
                slice_id=warp.slices[op],
                issued_at=self._engine.now,
            ))
        # MERGED: the in-flight fetch wakes this warp too.
        self._issued(warp)

    def _issued(self, warp: WarpContext) -> None:
        """Bookkeeping after an op left the issue stage."""
        warp.advance()
        if not warp.issued_all and warp.outstanding < self._config.max_outstanding_per_warp:
            self._schedule_issue(warp)
        else:
            warp.issue_pending = False

    def _op_completed(self, warp: WarpContext) -> None:
        """A load returned / store was accepted: free the warp slot."""
        if warp.outstanding <= 0:
            raise RuntimeError(f"warp {warp.warp_id}: completion underflow")
        warp.outstanding -= 1
        self.ops_completed += 1
        if warp.done:
            warp.maybe_retire()
        elif (
            not warp.issued_all
            and not warp.issue_pending
            and warp.outstanding < self._config.max_outstanding_per_warp
        ):
            self._schedule_issue(warp)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def on_fill(self, line: int) -> None:
        """A missed line arrived from the LLC: install it and wake waiters."""
        self.l1.fill(line)
        for warp in self.mshr.complete(line):
            self._op_completed(warp)
        # MSHR entries freed: retry parked warps. A retried warp may
        # now hit (another warp's fill brought its line in).
        while self._stalled and not self.mshr.full:
            waiting = self._stalled.popleft()
            self._try_issue_parked(waiting)

    def _try_issue_parked(self, warp: WarpContext) -> None:
        """Retry a warp that was parked on a full MSHR file."""
        op = warp.op
        if op >= warp.n_ops:
            # Fast-forwarded past the end while parked (sampled mode).
            warp.issue_pending = False
            warp.maybe_retire()
            return
        line = warp.lines[op]
        if self.l1.try_read(line):
            warp.outstanding += 1
            self._engine.after_call(
                self._config.l1_latency, self._op_completed_cb, warp
            )
            self._issued(warp)
            return
        outcome = self.mshr.allocate(line, warp)
        if outcome == MSHROutcome.FULL:
            self._stalled.appendleft(warp)
            return
        warp.outstanding += 1
        if outcome == MSHROutcome.NEW:
            self._send_read(MemRequest(
                sm_id=self.sm_id,
                line=line,
                channel=warp.channels[op],
                bank=warp.banks[op],
                row=warp.rows[op],
                slice_id=warp.slices[op],
                issued_at=self._engine.now,
            ))
        self._issued(warp)

    # ------------------------------------------------------------------
    # Sampled-fidelity fast-forward
    # ------------------------------------------------------------------
    def warm_l1(self, lines, writes, set_ids=None):
        """Functionally replay a warp's op stream through this SM's L1.

        The L1-filter stage of the sampled-fidelity fast-forward: no
        events, no warp state — just the tag/LRU/counter effects of
        the accesses.  Returns the positions forwarded downstream
        (read misses plus every write-through store), which the system
        replays through the LLC slices.  ``instructions_issued`` is
        untouched: it counts detailed issues only, so sampled-mode
        rate measurement stays clean.
        """
        return self.l1.warm_through_many(lines, writes, set_ids=set_ids)

    def __repr__(self) -> str:
        return (
            f"SM({self.sm_id}, tbs={self.tb_count}, warps={self.warp_count}, "
            f"issued={self.instructions_issued})"
        )
