"""Warp-level memory coalescing.

A GPU coalescer merges the per-thread addresses of one warp
instruction into the minimal set of aligned memory transactions.
In this reproduction coalescing happens when workload traces are
*built* (the simulator then replays the coalesced transactions), which
matches the paper's pipeline: the BIM address mapper sits directly
after the coalescer, so only coalesced transactions are ever mapped.

Functions are vectorized over numpy arrays and preserve first-touch
order, which is what a sequential walk over the warp's lanes produces.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["coalesce_warp", "coalesce_instruction_stream", "coalescing_degree"]


def coalesce_warp(thread_addresses, transaction_bytes: int = 128) -> np.ndarray:
    """Coalesce one warp instruction's per-thread byte addresses.

    Returns the unique *transaction_bytes*-aligned transaction
    addresses in first-occurrence order.  A fully coalesced warp
    (32 consecutive 4-byte accesses) yields a single transaction; a
    fully divergent one yields up to 32.
    """
    if transaction_bytes <= 0 or transaction_bytes & (transaction_bytes - 1):
        raise ValueError(
            f"transaction_bytes must be a positive power of two, got {transaction_bytes}"
        )
    addresses = np.asarray(thread_addresses, dtype=np.uint64)
    if addresses.size == 0:
        return np.empty(0, dtype=np.uint64)
    shift = np.uint64(transaction_bytes.bit_length() - 1)
    lines = (addresses >> shift) << shift
    _, first_positions = np.unique(lines, return_index=True)
    return lines[np.sort(first_positions)]


def coalesce_instruction_stream(
    per_instruction_addresses, transaction_bytes: int = 128
) -> Tuple[np.ndarray, np.ndarray]:
    """Coalesce a sequence of warp instructions.

    *per_instruction_addresses* is an iterable of per-thread address
    arrays (one entry per executed warp memory instruction).  Returns
    ``(transactions, instruction_index)``: the flat transaction stream
    and, for each transaction, the index of the instruction that
    produced it.
    """
    chunks = []
    owners = []
    for index, addresses in enumerate(per_instruction_addresses):
        txns = coalesce_warp(addresses, transaction_bytes)
        if txns.size:
            chunks.append(txns)
            owners.append(np.full(txns.size, index, dtype=np.int64))
    if not chunks:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    return np.concatenate(chunks), np.concatenate(owners)


def coalescing_degree(thread_addresses, transaction_bytes: int = 128) -> float:
    """Average threads served per transaction (32 = perfect, 1 = divergent)."""
    addresses = np.asarray(thread_addresses, dtype=np.uint64)
    if addresses.size == 0:
        raise ValueError("cannot compute coalescing degree of an empty access")
    transactions = coalesce_warp(addresses, transaction_bytes)
    return addresses.size / transactions.size
