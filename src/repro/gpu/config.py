"""GPU architecture configuration (paper Table I).

The baseline models the paper's simulated GPU: 12 SMs with up to
48 warps of 32 threads each, GTO warp scheduling, a 16 KB 4-way L1
per SM, a 512 KB LLC split into 8 slices across the 4 memory
controllers, and a 12x8 crossbar NoC.

The simulator runs on a single clock domain; latencies below are in
simulator cycles.  The paper's separate SM/NoC/DRAM clocks are folded
into these latency parameters (documented in DESIGN.md), which
preserves relative behaviour across mapping schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUConfig", "baseline_config", "config_with_sms"]


@dataclass(frozen=True)
class GPUConfig:
    """All GPU-side parameters of the simulated system."""

    # SM organization.
    n_sms: int = 12
    max_warps_per_sm: int = 48
    threads_per_warp: int = 32
    max_tbs_per_sm: int = 8
    issue_interval: int = 1  # cycles between memory instruction issues per SM
    # Independent memory instructions a warp may have in flight before
    # it stalls on a dependent use.  GPU warps routinely pipeline a few
    # loads; 1 would make the whole machine latency-bound.
    max_outstanding_per_warp: int = 4

    # L1 data cache (per SM): 16 KB, 4-way, 32 sets, 128 B lines.
    l1_bytes: int = 16 * 1024
    l1_ways: int = 4
    l1_latency: int = 28
    l1_mshrs: int = 32

    # Last-level cache: 8 slices, 64 KB each (512 KB total), 8-way.
    llc_slices: int = 8
    llc_slice_bytes: int = 64 * 1024
    llc_ways: int = 8
    llc_latency: int = 40
    llc_mshrs_per_slice: int = 64

    # Interconnect (12x8 crossbar, 32 B channels).
    line_bytes: int = 128
    noc_base_latency: int = 12
    noc_flit_bytes: int = 32
    noc_control_flits: int = 1  # request / write-ack packets

    # Nominal clock for converting cycles to seconds in power math.
    clock_mhz: float = 924.0

    def __post_init__(self) -> None:
        for name in (
            "n_sms", "max_warps_per_sm", "threads_per_warp", "max_tbs_per_sm",
            "issue_interval", "l1_bytes", "l1_ways", "l1_latency", "l1_mshrs",
            "llc_slices", "llc_slice_bytes", "llc_ways", "llc_latency",
            "llc_mshrs_per_slice", "line_bytes", "noc_flit_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.l1_bytes % (self.l1_ways * self.line_bytes):
            raise ValueError("L1 size must be divisible by ways * line size")
        if self.llc_slice_bytes % (self.llc_ways * self.line_bytes):
            raise ValueError("LLC slice size must be divisible by ways * line size")

    @property
    def l1_sets(self) -> int:
        return self.l1_bytes // (self.l1_ways * self.line_bytes)

    @property
    def llc_sets_per_slice(self) -> int:
        return self.llc_slice_bytes // (self.llc_ways * self.line_bytes)

    @property
    def llc_total_bytes(self) -> int:
        return self.llc_slices * self.llc_slice_bytes

    @property
    def data_packet_flits(self) -> int:
        """Flits of a cache-line-carrying NoC packet."""
        return max(1, self.line_bytes // self.noc_flit_bytes)

    @property
    def max_concurrent_tbs(self) -> int:
        """The TB window: how many TBs can run at once across all SMs.

        The paper's window-size heuristic sets the *entropy* window to
        the number of SMs; the hardware window below bounds how many
        TBs the TB scheduler can have in flight.
        """
        return self.n_sms * self.max_tbs_per_sm


def baseline_config() -> GPUConfig:
    """The 12-SM baseline of Table I."""
    return GPUConfig()


def config_with_sms(n_sms: int, base: GPUConfig = None) -> GPUConfig:
    """Scale the SM count (Fig. 18 sensitivity), keeping per-SM resources."""
    return replace(base or baseline_config(), n_sms=n_sms)
