"""Last-level cache slice.

The paper's 512 KB LLC is split into 8 slices attached to the four
memory controllers (two slices per controller).  The slice servicing
a request is selected by bits of the *mapped* address, so address
mapping directly controls LLC-slice load balance — the mechanism
behind the Fig. 14a LLC-level-parallelism results.

Each slice is a write-back, write-allocate cache with MSHRs:

* **read**: hit responds after the slice latency; miss allocates an
  MSHR (merging secondaries) and fetches the line from DRAM.
* **write** (write-through traffic from the L1s): hits dirty the line;
  misses allocate the line dirty *without* a DRAM fetch — warp stores
  are full-line coalesced transactions, so fetching would be wasted.
* dirty evictions emit fire-and-forget DRAM writebacks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Engine
from .cache import MSHRFile, MSHROutcome, SetAssociativeCache
from .config import GPUConfig
from .sm import MemRequest

__all__ = ["LLCSlice"]


class LLCSlice:
    """One LLC slice plus its MSHRs and DRAM-side plumbing."""

    def __init__(
        self,
        engine: "Engine",
        config: GPUConfig,
        slice_id: int,
        send_response: Callable[[MemRequest], None],
        submit_dram_read: Callable[[MemRequest], None],
        submit_dram_writeback: Callable[[int], None],
    ) -> None:
        """*send_response* returns a filled read to its SM;
        *submit_dram_read* fetches a missed line;
        *submit_dram_writeback* takes a dirty victim's line address."""
        self._engine = engine
        self._config = config
        self.slice_id = slice_id
        self._send_response = send_response
        self._submit_dram_read = submit_dram_read
        self._submit_dram_writeback = submit_dram_writeback
        self.cache = SetAssociativeCache(
            config.llc_sets_per_slice,
            config.llc_ways,
            config.line_bytes,
            name=f"LLC[{slice_id}]",
        )
        self.mshr = MSHRFile(config.llc_mshrs_per_slice, name=f"LLC-MSHR[{slice_id}]")
        self._stalled: Deque[MemRequest] = deque()
        self.outstanding = 0  # reads in flight at this slice
        # Pre-bound for the engine's closure-free scheduling fast path.
        self._respond_cb = self._respond

    # ------------------------------------------------------------------
    # Request handling (arrivals from the request NoC)
    # ------------------------------------------------------------------
    def on_read(self, request: MemRequest) -> None:
        """A read request arrived at this slice."""
        self.outstanding += 1
        if self.cache.try_read(request.line):
            self._engine.after_call(
                self._config.llc_latency, self._respond_cb, request
            )
            return
        self.cache.stats.count_miss(is_write=False)
        self._allocate_and_fetch(request)

    def on_write(self, line: int) -> None:
        """A write-through store arrived (full-line, no response needed)."""
        if self.cache.probe(line):
            self.cache.access(line, is_write=True)
            return
        self.cache.stats.count_miss(is_write=True)
        # Install the full-line store immediately. If the line is also
        # being fetched for readers, the later fill merges into the
        # resident entry (keeping it dirty), so there is no race.
        victim = self.cache.fill(line, dirty=True)
        if victim is not None:
            self._submit_dram_writeback(victim)

    def _allocate_and_fetch(self, request: MemRequest) -> None:
        outcome = self.mshr.allocate(request.line, request)
        if outcome == MSHROutcome.FULL:
            self._stalled.append(request)
        elif outcome == MSHROutcome.NEW:
            self._submit_dram_read(request)
        # MERGED: nothing to do; the in-flight fetch covers us.

    # ------------------------------------------------------------------
    # DRAM side
    # ------------------------------------------------------------------
    def on_dram_fill(self, line: int) -> None:
        """The DRAM read for *line* completed: fill, respond, retry."""
        victim = self.cache.fill(line)
        if victim is not None:
            self._submit_dram_writeback(victim)
        for request in self.mshr.complete(line):
            self._respond(request)
        while self._stalled and not self.mshr.full:
            waiting = self._stalled.popleft()
            if self.cache.try_read(waiting.line):
                self._engine.after_call(
                    self._config.llc_latency, self._respond_cb, waiting
                )
            else:
                self._allocate_and_fetch(waiting)

    def _respond(self, request: MemRequest) -> None:
        self.outstanding -= 1
        self._send_response(request)

    # ------------------------------------------------------------------
    # Sampled-fidelity fast-forward
    # ------------------------------------------------------------------
    def warm_many(self, lines, writes, set_ids=None):
        """Functionally replay post-L1 accesses through this slice.

        The bulk no-engine path of the sampled-fidelity mode: tags,
        LRU and hit/miss counters are updated as if the accesses had
        been simulated, without scheduling any events.  Returns
        ``(read_miss_positions, writeback_lines)`` — the DRAM traffic
        the replayed accesses would have generated (read fetches plus
        dirty victim writebacks), for the caller to replay through the
        DRAM row state.
        """
        return self.cache.warm_back_many(lines, writes, set_ids=set_ids)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def miss_rate(self) -> float:
        return self.cache.stats.miss_rate()

    def __repr__(self) -> str:
        return (
            f"LLCSlice({self.slice_id}, outstanding={self.outstanding}, "
            f"miss_rate={self.miss_rate():.3f})"
        )
