"""``repro.client`` — a thin library client for ``repro serve``.

Stdlib-only (``urllib``): submit a scenario, poll it, wait for a
terminal state, fetch the deterministic report.  The wire contract
lives in :mod:`repro.serve.protocol`; this module adds nothing to it.

::

    from repro.client import ReproClient

    client = ReproClient("http://127.0.0.1:8731", tenant="alice")
    job = client.submit({"benchmarks": ["SP"], "schemes": ["PAE"]})
    done = client.wait(job["id"])
    text = client.report_text(job["id"])   # byte-identical to repro sweep

:class:`ClientError` subclasses :class:`OSError` so CLI front-ends
that already map ``OSError`` to a usage/IO exit code (``repro
submit``) need no special casing; :attr:`ClientError.status` carries
the HTTP status when the server answered at all.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Union

from .serve.protocol import API_PREFIX, TENANT_HEADER, TERMINAL_STATES

__all__ = ["ClientError", "ReproClient"]


class ClientError(OSError):
    """A failed server interaction (HTTP error, bad payload, timeout).

    ``status`` is the HTTP status code, or ``None`` when the failure
    happened below HTTP (connection refused, malformed response).
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ReproClient:
    """Talks to one ``repro serve`` instance, as one tenant."""

    def __init__(
        self,
        base_url: str,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        raw: bool = False,
    ) -> Union[Dict[str, object], str]:
        url = f"{self.base_url}{API_PREFIX}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.tenant:
            headers[TENANT_HEADER] = self.tenant
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                text = resp.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                payload = json.loads(error.read().decode("utf-8"))
                detail = str(payload.get("error", ""))
            except Exception:  # noqa: BLE001 — error body is best-effort
                pass
            raise ClientError(
                f"{method} {url} -> HTTP {error.code}"
                + (f": {detail}" if detail else ""),
                status=error.code,
            ) from None
        except urllib.error.URLError as error:
            raise ClientError(
                f"{method} {url} failed: {error.reason}"
            ) from None
        if raw:
            return text
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise ClientError(
                f"{method} {url} returned malformed JSON: {error}"
            ) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def submit(self, scenario) -> Dict[str, object]:
        """Submit a scenario; returns the job's initial status document.

        *scenario* may be a plain scenario dict, or anything with a
        ``to_dict()`` (:class:`~repro.specs.ScenarioSpec`,
        :class:`~repro.runner.config.SweepGrid`).
        """
        if hasattr(scenario, "to_dict"):
            scenario = scenario.to_dict()
        if not isinstance(scenario, dict):
            raise TypeError(
                f"scenario must be a dict, ScenarioSpec or SweepGrid, got "
                f"{type(scenario).__name__}"
            )
        return self._request("POST", "/sweeps", body=scenario)

    def jobs(self) -> Dict[str, object]:
        return self._request("GET", "/sweeps")

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/sweeps/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.25,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; return its status.

        Raises :class:`ClientError` when *timeout* (seconds) elapses
        first — the job itself keeps running server-side.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ClientError(
                    f"job {job_id} still {status.get('state')} after "
                    f"{timeout}s"
                )
            time.sleep(poll_seconds)

    def report_text(self, job_id: str) -> str:
        """The rendered report — byte-identical to ``repro sweep``."""
        return self._request("GET", f"/sweeps/{job_id}/report", raw=True)

    def report(self, job_id: str) -> Dict[str, object]:
        """The report parsed back to a dict."""
        return json.loads(self.report_text(job_id))
