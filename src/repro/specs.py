"""Serializable scenario specifications.

This module is the self-describing half of the open config surface
(:mod:`repro.registry` is the name-based half): a spec is a small
frozen dataclass with a canonical-JSON representation, so it can live
in a file, travel through ``RunConfig.to_dict()`` / worker pickles /
shard reports, and derive the content-addressed cache key — custom
scenarios cache, shard, claim and merge exactly like built-ins.

* :class:`SchemeSpec` — a mapping scheme: a **registered** name (with
  optional builder params), a literal **bim** matrix (the
  :mod:`repro.core.serialize` row format), or a **stages** pipeline of
  XOR / swap / permutation stages composed over GF(2).
* :class:`WorkloadSpec` — a workload: a **registered** benchmark, a
  synthetic **pattern** recipe (:mod:`repro.workloads.recipes`), or an
  on-disk **trace** file (:mod:`repro.workloads.io`), content-addressed
  by its SHA-256 so the cache key survives moving the file.
* :class:`ScenarioSpec` — a whole sweep grid (benchmarks x schemes x
  seeds x SM counts x memories) as one JSON document; ``repro sweep
  --spec scenario.json`` runs it.

Every spec offers ``to_dict`` / ``from_dict`` (exact round trip),
``compact()`` (the form embedded in configs and reports — a plain name
string for plain registered entries, keeping built-in cache keys
byte-stable), ``identity()`` (the form hashed into the cache key), and
``build(...)``.  ``from_value`` accepts a spec, a name string, or a
dict, so every API boundary can normalize uniformly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from . import registry
from .core import gf2
from .core.bim import BinaryInvertibleMatrix
from .core.schemes import MappingScheme
from .core.serialize import canonical_json, pack_rows, stable_hash, unpack_rows

__all__ = [
    "SchemeSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "SpecError",
    "SCHEME_SPEC_TYPE",
    "WORKLOAD_SPEC_TYPE",
    "SCENARIO_SPEC_TYPE",
]

SCHEME_SPEC_TYPE = "scheme_spec"
WORKLOAD_SPEC_TYPE = "workload_spec"
SCENARIO_SPEC_TYPE = "scenario_spec"

_SCHEME_KINDS = ("registered", "bim", "stages")
_WORKLOAD_KINDS = ("registered", "pattern", "trace")


class SpecError(ValueError):
    """Raised when a spec is structurally invalid or cannot build."""


# Params a registered spec may NOT carry: the envelope keys (they would
# clobber to_dict round-trips) and the infra kwargs that belong on the
# RunConfig axes (seed/scale) or are computed by the runner
# (entropy_by_bit) — letting a param shadow them would make the same
# name mean two different things in one config.
_RESERVED_PARAMS = frozenset(
    ("type", "kind", "name", "seed", "scale", "entropy_by_bit")
)


def _jsonable(value):
    """Tuples/arrays -> lists so payloads stay canonical-JSON clean."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _canonical_payload(data: Dict) -> str:
    return canonical_json(_jsonable(data)) if data else ""


def _as_spec_dict(data, what: str) -> Dict:
    if not isinstance(data, dict):
        raise SpecError(
            f"a {what} must be a JSON object, got {type(data).__name__}"
        )
    return data


def _require(data: Dict, key: str, what: str):
    try:
        return data[key]
    except KeyError:
        raise SpecError(f"{what} is missing the required {key!r} field") from None


@dataclass(frozen=True)
class _Spec:
    """Shared shape: a kind tag, a display name, a canonical payload."""

    kind: str
    name: str
    payload: str = ""

    _TYPE: ClassVar[str] = ""      # overridden
    _KINDS: ClassVar[Tuple[str, ...]] = ()

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise SpecError(
                f"{type(self).__name__} kind must be one of {self._KINDS}, "
                f"got {self.kind!r}"
            )
        name = str(self.name).strip().upper()
        if not name:
            raise SpecError(f"{type(self).__name__} needs a non-empty name")
        object.__setattr__(self, "name", name)
        if self.payload:
            try:
                data = json.loads(self.payload)
            except ValueError:
                raise SpecError(
                    f"{type(self).__name__} payload is not valid JSON"
                ) from None
            if not isinstance(data, dict):
                raise SpecError(f"{type(self).__name__} payload must be an object")
            # Re-canonicalize so equal specs are equal objects.
            object.__setattr__(self, "payload", canonical_json(data))
        self._validate()

    def _validate(self) -> None:  # pragma: no cover - overridden
        pass

    @property
    def data(self) -> Dict:
        """The kind-specific payload as a dict (empty when none)."""
        return json.loads(self.payload) if self.payload else {}

    @property
    def is_plain_name(self) -> bool:
        """True for a bare registered name with no extra parameters."""
        return self.kind == "registered" and not self.payload

    def to_dict(self) -> Dict:
        data = {"type": self._TYPE, "kind": self.kind, "name": self.name}
        data.update(self.data)
        return data

    def compact(self) -> Union[str, Dict]:
        """The embedded form: a bare string for plain registered names.

        This keeps ``RunConfig.to_dict()`` (and therefore every cache
        key, record and report) byte-identical to the pre-spec format
        for built-in scenarios.
        """
        return self.name if self.is_plain_name else self.to_dict()

    def identity(self) -> Union[str, Dict]:
        """The form hashed into cache keys (defaults to :meth:`compact`)."""
        return self.compact()

    def spec_hash(self) -> str:
        """Stable content hash of this spec."""
        return stable_hash(_jsonable(self.identity()))

    def __str__(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# SchemeSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemeSpec(_Spec):
    """A serializable description of one address-mapping scheme."""

    _TYPE = SCHEME_SPEC_TYPE
    _KINDS = _SCHEME_KINDS

    # -- constructors ---------------------------------------------------
    @classmethod
    def registered(cls, name: str, **params) -> "SchemeSpec":
        """A scheme by registry name, with optional builder params."""
        return cls("registered", name, _canonical_payload(params))

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Sequence[str],
        width: int,
        strategy: str = "broad",
        extra_latency_cycles: int = 1,
        metadata: Optional[Dict] = None,
    ) -> "SchemeSpec":
        """A literal BIM given as hex row strings (serialize.py format)."""
        return cls("bim", name, _canonical_payload({
            "width": int(width),
            "rows": [str(r) for r in rows],
            "strategy": str(strategy),
            "extra_latency_cycles": int(extra_latency_cycles),
            "metadata": _jsonable(metadata or {}),
        }))

    @classmethod
    def from_scheme(
        cls, scheme: MappingScheme, name: Optional[str] = None
    ) -> "SchemeSpec":
        """Snapshot a built :class:`MappingScheme` as a literal-BIM spec."""
        return cls.from_rows(
            name or scheme.name,
            pack_rows(scheme.bim.matrix),
            scheme.bim.width,
            strategy=scheme.strategy,
            extra_latency_cycles=scheme.extra_latency_cycles,
            metadata=scheme.metadata,
        )

    @classmethod
    def stages(
        cls,
        name: str,
        stages: Sequence[Dict],
        extra_latency_cycles: int = 1,
    ) -> "SchemeSpec":
        """An XOR/permutation stage pipeline (applied first to last).

        Stage forms::

            {"op": "xor", "target": 8, "sources": [15, 16]}
            {"op": "swap", "a": 8, "b": 20}
            {"op": "permute", "sources": [0, 1, 3, 2, ...]}  # full width

        ``xor`` XORs the listed source bits into the target output bit;
        ``permute``'s ``sources[i]`` is the input bit feeding output
        bit *i*.  Block-offset bits may never be read or moved.
        """
        return cls("stages", name, _canonical_payload({
            "stages": [dict(stage) for stage in stages],
            "extra_latency_cycles": int(extra_latency_cycles),
        }))

    @classmethod
    def from_value(cls, value) -> "SchemeSpec":
        """Normalize a name / spec / dict / MappingScheme to a spec."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.registered(value)
        if isinstance(value, MappingScheme):
            return cls.from_scheme(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise SpecError(
            f"cannot interpret {type(value).__name__} as a scheme spec"
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "SchemeSpec":
        """Rebuild from :meth:`to_dict` output.

        Also accepts the :mod:`repro.core.serialize` ``mapping_scheme``
        document (what ``repro export-scheme`` writes), converting it
        to a literal-BIM spec — so an exported scheme file is directly
        usable anywhere a spec is.  Structural problems raise
        :class:`SpecError`, never a bare ``KeyError``.
        """
        data = _as_spec_dict(data, "scheme spec")
        kind = data.get("type")
        if kind == "mapping_scheme":
            return cls.from_rows(
                str(_require(data, "name", "a serialized scheme")),
                _require(data, "rows", "a serialized scheme"),
                int(_require(data, "width", "a serialized scheme")),
                strategy=str(data.get("strategy", "broad")),
                extra_latency_cycles=int(data.get("extra_latency_cycles", 1)),
                metadata=dict(data.get("metadata", {})),
            )
        if kind not in (None, SCHEME_SPEC_TYPE):
            raise SpecError(f"not a scheme spec: type={kind!r}")
        payload = {
            k: v for k, v in data.items() if k not in ("type", "kind", "name")
        }
        return cls(
            str(data.get("kind", "registered")),
            str(_require(data, "name", "a scheme spec")),
            _canonical_payload(payload),
        )

    @classmethod
    def from_file(cls, path) -> "SchemeSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- validation -----------------------------------------------------
    def _validate(self) -> None:
        data = self.data
        if self.kind == "registered":
            reserved = _RESERVED_PARAMS.intersection(data)
            if reserved:
                raise SpecError(
                    f"registered-scheme params may not use the reserved "
                    f"names {sorted(reserved)}; seed/scale are RunConfig "
                    f"axes, entropy_by_bit is runner-computed"
                )
        elif self.kind == "bim":
            width = data.get("width")
            rows = data.get("rows")
            if not isinstance(width, int) or width <= 0:
                raise SpecError(f"bim spec needs a positive width, got {width!r}")
            if not isinstance(rows, list) or len(rows) != width:
                raise SpecError(
                    f"bim spec needs exactly {width} rows, got "
                    f"{len(rows) if isinstance(rows, list) else rows!r}"
                )
            if not all(isinstance(r, str) for r in rows):
                raise SpecError("bim spec rows must be hex strings")
        elif self.kind == "stages":
            stages = data.get("stages")
            if not isinstance(stages, list) or not stages:
                raise SpecError("stages spec needs a non-empty stage list")
            for stage in stages:
                if not isinstance(stage, dict) or stage.get("op") not in (
                    "xor", "swap", "permute"
                ):
                    raise SpecError(
                        f"stage op must be xor/swap/permute, got {stage!r}"
                    )

    # -- building -------------------------------------------------------
    def needs_entropy_profile(self) -> bool:
        """Whether building requires the suite-average entropy profile."""
        if self.kind != "registered":
            return False
        return registry.scheme_entry(self.name).needs_entropy_profile

    def build(
        self, address_map, seed: int = 0, entropy_by_bit=None
    ) -> MappingScheme:
        """Realize this spec against *address_map* (re-validating).

        Literal matrices go through the normal
        :class:`~repro.core.bim.BinaryInvertibleMatrix` constructor, so
        a corrupted spec can never produce a non-invertible mapping.
        """
        if self.kind == "registered":
            return registry.make_scheme(
                self.name, address_map,
                seed=seed, entropy_by_bit=entropy_by_bit, **self.data,
            )
        data = self.data
        if self.kind == "bim":
            if data["width"] != address_map.width:
                raise SpecError(
                    f"spec width {data['width']} does not match address map "
                    f"width {address_map.width}"
                )
            bim = BinaryInvertibleMatrix(
                unpack_rows(data["rows"], data["width"])
            )
            return MappingScheme(
                name=self.name,
                bim=bim,
                address_map=address_map,
                strategy=str(data.get("strategy", "broad")),
                extra_latency_cycles=int(data.get("extra_latency_cycles", 1)),
                metadata=dict(data.get("metadata", {})),
            )
        # stages
        matrix = self._compose_stages(address_map)
        return MappingScheme(
            name=self.name,
            bim=BinaryInvertibleMatrix(matrix),
            address_map=address_map,
            strategy="stages",
            extra_latency_cycles=int(data.get("extra_latency_cycles", 1)),
            metadata={"stages": len(data["stages"])},
        )

    def _compose_stages(self, address_map) -> np.ndarray:
        width = address_map.width
        block = set(address_map.block_bits())

        def check_bit(value, role) -> int:
            try:
                bit = int(value)
            except (TypeError, ValueError):
                raise SpecError(
                    f"stage {role} bit must be an integer, got {value!r}"
                ) from None
            if not 0 <= bit < width:
                raise SpecError(f"stage {role} bit {bit} outside 0..{width - 1}")
            if bit in block:
                raise SpecError(
                    f"stage {role} bit {bit} is a block-offset bit; mapping "
                    f"schemes never read or move block bits"
                )
            return bit

        matrix = gf2.identity(width)
        for stage in self.data["stages"]:
            op = stage["op"]
            step = gf2.identity(width)
            if op == "xor":
                target = check_bit(stage.get("target"), "target")
                raw_sources = stage.get("sources")
                if not isinstance(raw_sources, list) or not raw_sources:
                    raise SpecError(
                        "xor stage needs a non-empty 'sources' bit list"
                    )
                sources = [check_bit(s, "source") for s in raw_sources]
                for source in sources:
                    step[target, source] ^= 1
            elif op == "swap":
                a = check_bit(stage.get("a"), "swap")
                b = check_bit(stage.get("b"), "swap")
                step[[a, b]] = step[[b, a]]
            else:  # permute
                sources = stage.get("sources")
                if not isinstance(sources, list) or len(sources) != width:
                    raise SpecError(
                        f"permute stage needs a full {width}-entry source list"
                    )
                if sorted(int(s) for s in sources) != list(range(width)):
                    raise SpecError("permute stage sources must be a permutation")
                step = np.zeros((width, width), dtype=np.uint8)
                for out_bit, src in enumerate(sources):
                    src = int(src)
                    if out_bit != src:
                        check_bit(out_bit, "permute")
                        check_bit(src, "permute")
                    step[out_bit, src] = 1
            matrix = gf2.gf2_matmul(step, matrix)
        if not gf2.is_invertible(matrix):
            raise SpecError(
                f"stage pipeline of {self.name!r} composes to a singular "
                f"matrix; the mapping would not be a bijection"
            )
        return matrix


# ----------------------------------------------------------------------
# WorkloadSpec
# ----------------------------------------------------------------------
def _file_sha256(path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class WorkloadSpec(_Spec):
    """A serializable description of one workload."""

    _TYPE = WORKLOAD_SPEC_TYPE
    _KINDS = _WORKLOAD_KINDS

    # -- constructors ---------------------------------------------------
    @classmethod
    def registered(cls, name: str, **params) -> "WorkloadSpec":
        return cls("registered", name, _canonical_payload(params))

    @classmethod
    def pattern(cls, name: str, recipe: Dict) -> "WorkloadSpec":
        """A synthetic workload from a :mod:`repro.workloads.recipes` recipe."""
        from .workloads.recipes import validate_recipe

        validate_recipe(recipe)
        return cls("pattern", name, _canonical_payload({"recipe": recipe}))

    @classmethod
    def trace(
        cls, path, name: Optional[str] = None, sha256: Optional[str] = None
    ) -> "WorkloadSpec":
        """A trace file written by :func:`repro.workloads.io.save_workload`.

        The file's SHA-256 (computed now unless given) is the cache
        identity; the path is only the retrieval hint, so records stay
        valid when the file moves.
        """
        path = Path(path)
        digest = sha256 if sha256 is not None else _file_sha256(path)
        return cls("trace", name or path.stem, _canonical_payload({
            "path": str(path), "sha256": str(digest),
        }))

    @classmethod
    def from_value(cls, value) -> "WorkloadSpec":
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.registered(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise SpecError(
            f"cannot interpret {type(value).__name__} as a workload spec"
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkloadSpec":
        data = _as_spec_dict(data, "workload spec")
        kind = data.get("type")
        if kind not in (None, WORKLOAD_SPEC_TYPE):
            raise SpecError(f"not a workload spec: type={kind!r}")
        payload = {
            k: v for k, v in data.items() if k not in ("type", "kind", "name")
        }
        return cls(
            str(data.get("kind", "registered")),
            str(_require(data, "name", "a workload spec")),
            _canonical_payload(payload),
        )

    @classmethod
    def from_file(cls, path) -> "WorkloadSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- validation -----------------------------------------------------
    def _validate(self) -> None:
        data = self.data
        if self.kind == "registered":
            reserved = {"type", "kind", "name", "scale"}.intersection(data)
            if reserved:
                raise SpecError(
                    f"registered-workload params may not use the reserved "
                    f"names {sorted(reserved)}; scale is a RunConfig axis"
                )
        elif self.kind == "pattern":
            if not isinstance(data.get("recipe"), dict):
                raise SpecError("pattern spec needs a 'recipe' object")
        elif self.kind == "trace":
            if not data.get("path") or not data.get("sha256"):
                raise SpecError("trace spec needs 'path' and 'sha256'")

    def identity(self) -> Union[str, Dict]:
        """Cache identity: trace specs hash content, never location."""
        if self.kind != "trace":
            return self.compact()
        return {
            "type": WORKLOAD_SPEC_TYPE, "kind": "trace",
            "name": self.name, "sha256": self.data["sha256"],
        }

    # -- building -------------------------------------------------------
    def build(self, scale: float = 1.0):
        """Realize this spec as a :class:`~repro.workloads.base.Workload`.

        Trace workloads are fixed recordings: *scale* does not resize
        them (it still participates in the cache key like any config
        axis).  The file's digest is re-verified before use.
        """
        if self.kind == "registered":
            return registry.make_workload(self.name, scale=scale, **self.data)
        data = self.data
        if self.kind == "pattern":
            from .workloads.recipes import build_recipe_workload

            return build_recipe_workload(self.name, data["recipe"], scale=scale)
        # trace
        from .workloads.io import load_workload

        path = Path(data["path"])
        if not path.exists():
            raise SpecError(f"trace file {path} does not exist")
        digest = _file_sha256(path)
        if digest != data["sha256"]:
            raise SpecError(
                f"trace file {path} hashes to {digest[:12]}..., but the spec "
                f"pins {data['sha256'][:12]}... — refusing to serve a "
                f"different trace under the same cache identity"
            )
        return load_workload(path)


# ----------------------------------------------------------------------
# ScenarioSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A whole sweep grid as one serializable document.

    The spec-world mirror of :class:`~repro.runner.config.SweepGrid`
    (which it expands to): benchmarks and schemes may be names or
    nested specs.  ``repro sweep --spec scenario.json`` and
    :func:`repro.api.sweep` both consume it.
    """

    benchmarks: Tuple[WorkloadSpec, ...]
    schemes: Tuple[SchemeSpec, ...]
    seeds: Tuple[int, ...] = (0,)
    n_sms: Tuple[int, ...] = (12,)
    memories: Tuple[str, ...] = ("gddr5",)
    scale: float = 1.0
    window: int = 12
    fidelity: object = "exact"

    def __post_init__(self) -> None:
        from .sim.fidelity import parse_fidelity

        try:
            object.__setattr__(self, "fidelity", parse_fidelity(self.fidelity))
        except (TypeError, ValueError) as error:
            raise SpecError(str(error)) from None
        object.__setattr__(self, "benchmarks", tuple(
            WorkloadSpec.from_value(b) for b in self.benchmarks
        ))
        object.__setattr__(self, "schemes", tuple(
            SchemeSpec.from_value(s) for s in self.schemes
        ))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "n_sms", tuple(int(n) for n in self.n_sms))
        object.__setattr__(self, "memories", tuple(
            str(m).lower() for m in self.memories
        ))
        if not self.benchmarks or not self.schemes:
            raise SpecError("a scenario needs at least one benchmark and scheme")

    def grid(self):
        """Expand to a :class:`~repro.runner.config.SweepGrid`."""
        from .runner.config import SweepGrid

        return SweepGrid(
            benchmarks=self.benchmarks,
            schemes=self.schemes,
            seeds=self.seeds,
            n_sms=self.n_sms,
            memories=self.memories,
            scale=self.scale,
            window=self.window,
            fidelity=self.fidelity,
        )

    def to_dict(self) -> Dict:
        from .sim.fidelity import EXACT, fidelity_to_json

        data = {
            "type": SCENARIO_SPEC_TYPE,
            "benchmarks": [b.compact() for b in self.benchmarks],
            "schemes": [s.compact() for s in self.schemes],
            "seeds": list(self.seeds),
            "n_sms": list(self.n_sms),
            "memories": list(self.memories),
            "scale": self.scale,
            "window": self.window,
        }
        if self.fidelity != EXACT:  # exact omitted: pre-fidelity byte-parity
            data["fidelity"] = fidelity_to_json(self.fidelity)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        data = _as_spec_dict(data, "scenario spec")
        kind = data.get("type")
        if kind not in (None, SCENARIO_SPEC_TYPE):
            raise SpecError(f"not a scenario spec: type={kind!r}")

        def axis(key, default=None):
            value = (
                _require(data, key, "a scenario spec")
                if default is None else data.get(key, default)
            )
            if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
                raise SpecError(
                    f"scenario {key!r} must be a list, got {value!r}"
                )
            return tuple(value)

        try:
            return cls(
                benchmarks=axis("benchmarks"),
                schemes=axis("schemes"),
                seeds=axis("seeds", (0,)),
                n_sms=axis("n_sms", (12,)),
                memories=axis("memories", ("gddr5",)),
                scale=float(data.get("scale", 1.0)),
                window=int(data.get("window", 12)),
                fidelity=data.get("fidelity", "exact"),
            )
        except TypeError as error:
            raise SpecError(f"malformed scenario spec: {error}") from None

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def dump(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def spec_hash(self) -> str:
        return stable_hash(_jsonable(self.to_dict()))
