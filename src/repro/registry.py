"""Open registries for mapping schemes, workloads and memory configs.

The paper's central claim is that *any* invertible GF(2) address
mapping can be evaluated for entropy and power — so the pipeline must
not be limited to the six schemes and sixteen benchmarks it ships
with.  This module is the extension point: three process-wide
registries map names to builder callables, and the built-ins are just
the pre-registered entries (:mod:`repro.core.schemes` and
:mod:`repro.workloads.suite` register themselves on import).

Registering your own entries::

    from repro.registry import register_scheme, register_workload

    @register_scheme("MYXOR")
    def myxor(address_map, seed=0, entropy_by_bit=None):
        ...
        return MappingScheme(...)

    @register_workload("MYBENCH")
    def mybench(scale=1.0):
        return Workload(...)

Builder signatures
------------------
* scheme builders are called as ``fn(address_map, seed=...,
  entropy_by_bit=..., **params)``; keyword arguments the function does
  not accept are silently dropped, so ``fn(address_map)`` is a valid
  builder for a deterministic scheme.  Pass
  ``needs_entropy_profile=True`` at registration to receive the
  suite-average entropy profile (what the paper's RMP is built from).
* workload builders are called as ``fn(scale=..., **params)``.
* memory builders take no arguments and return a
  :class:`MemoryConfig`; results are memoized per process (hardware
  descriptions are immutable).

Plugins
-------
:func:`load_entry_point` imports ``pkg.module`` or ``pkg.module:attr``
and registers what it finds — the CLI's ``--register`` flag routes
here.  The ``REPRO_PLUGINS`` environment variable (comma-separated
entry points) is loaded lazily before the
first registry lookup, which is how sweep *worker processes* see the
same user-registered entries as the parent: the CLI exports the flag's
value into the environment the pool inherits.

A decorator applied in the driving process does **not** cross process
boundaries on its own: pool workers re-validate configs by name, so a
scheme registered only in-process works with ``workers=1`` (and, by
accident of ``fork``, on Linux) but fails on spawn-based platforms.
For multi-process sweeps, put the builder in an importable module and
name it via ``--register`` / ``REPRO_PLUGINS`` — or use a
self-describing :mod:`repro.specs` spec, which carries its full
content through the worker payload and needs no registration at all.

Registered **names** are the unit of cache identity: a
:class:`~repro.runner.config.RunConfig` naming a registered scheme
hashes the name (plus seed/params), not the builder's output.  Two
different builders registered under one name in different processes
would silently share cache records — don't do that.  Fully
self-describing alternatives (a serialized BIM, a stage pipeline, a
pattern recipe) live in :mod:`repro.specs` and hash their content.
"""

from __future__ import annotations

import importlib
import inspect
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "MemoryConfig",
    "RegistryError",
    "SchemeEntry",
    "WorkloadEntry",
    "MemoryEntry",
    "register_scheme",
    "register_workload",
    "register_memory",
    "scheme_names",
    "workload_names",
    "memory_names",
    "scheme_entry",
    "workload_entry",
    "memory_entry",
    "make_scheme",
    "make_workload",
    "memory_config",
    "load_entry_point",
    "load_plugins",
    "PLUGIN_ENV_VAR",
]

PLUGIN_ENV_VAR = "REPRO_PLUGINS"


class RegistryError(ValueError):
    """Raised on unknown names, duplicate registrations or bad plugins."""


@dataclass(frozen=True)
class SchemeEntry:
    """One registered mapping-scheme builder."""

    name: str
    builder: Callable
    needs_entropy_profile: bool = False
    origin: str = "user"
    doc: str = ""


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload builder."""

    name: str
    builder: Callable
    origin: str = "user"
    doc: str = ""


@dataclass(frozen=True)
class MemoryConfig:
    """A memory technology: its address map, timing and power model.

    ``power_params`` of None selects the default GDDR5 power model of
    :mod:`repro.dram.power`.
    """

    name: str
    address_map: object
    timing: object
    power_params: object = None


@dataclass(frozen=True)
class MemoryEntry:
    """One registered memory-technology builder."""

    name: str
    builder: Callable
    origin: str = "user"
    doc: str = ""


_SCHEMES: Dict[str, SchemeEntry] = {}
_WORKLOADS: Dict[str, WorkloadEntry] = {}
_MEMORY_BUILDERS: Dict[str, MemoryEntry] = {}
_MEMORY_CACHE: Dict[str, MemoryConfig] = {}
_LOADED_PLUGINS: set = set()
_BUILTINS_LOADED = False


def _ensure_ready() -> None:
    """Register built-ins and environment plugins (idempotent, lazy).

    Importing :mod:`repro.core.schemes` / :mod:`repro.workloads.suite`
    runs their registration decorators; doing it lazily here keeps
    this module import-cycle free (it imports nothing from ``repro``
    at module level).
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import core  # noqa: F401  (registers the six schemes)
        from . import workloads  # noqa: F401  (registers the Table II suite)
        _register_builtin_memories()
    env = os.environ.get(PLUGIN_ENV_VAR, "").strip()
    if env:
        load_plugins(env)


def _register_builtin_memories() -> None:
    def _gddr5() -> MemoryConfig:
        from .core.address_map import hynix_gddr5_map
        from .dram.timing import gddr5_timing

        return MemoryConfig("gddr5", hynix_gddr5_map(), gddr5_timing(), None)

    def _stacked() -> MemoryConfig:
        from .dram.stacked import stacked_memory_config

        stacked = stacked_memory_config()
        return MemoryConfig(
            "stacked", stacked.address_map, stacked.timing, stacked.power_params
        )

    register_memory("gddr5", origin="builtin")(_gddr5)
    register_memory("stacked", origin="builtin")(_stacked)


# ----------------------------------------------------------------------
# Registration decorators
# ----------------------------------------------------------------------
def _register(
    table: Dict, make_entry: Callable, kind: str, name: Optional[str],
    replace: bool,
) -> Callable:
    def decorator(fn: Callable) -> Callable:
        key = (name or fn.__name__).strip().upper() if kind != "memory" else (
            (name or fn.__name__).strip().lower()
        )
        if not key:
            raise RegistryError(f"{kind} registration needs a non-empty name")
        if key in table and not replace:
            raise RegistryError(
                f"{kind} {key!r} is already registered; pass replace=True to "
                f"override it deliberately"
            )
        table[key] = make_entry(key, fn)
        return fn

    return decorator


def register_scheme(
    name: Optional[str] = None,
    *,
    needs_entropy_profile: bool = False,
    replace: bool = False,
    origin: str = "user",
) -> Callable:
    """Decorator: register a mapping-scheme builder under *name*."""
    return _register(
        _SCHEMES,
        lambda key, fn: SchemeEntry(
            key, fn, needs_entropy_profile, origin, (fn.__doc__ or "").strip()
        ),
        "scheme",
        name,
        replace,
    )


def register_workload(
    name: Optional[str] = None, *, replace: bool = False, origin: str = "user"
) -> Callable:
    """Decorator: register a workload builder under *name*."""
    return _register(
        _WORKLOADS,
        lambda key, fn: WorkloadEntry(key, fn, origin, (fn.__doc__ or "").strip()),
        "workload",
        name,
        replace,
    )


def register_memory(
    name: Optional[str] = None, *, replace: bool = False, origin: str = "user"
) -> Callable:
    """Decorator: register a memory-technology builder under *name*."""
    def decorator(fn: Callable) -> Callable:
        _register(
            _MEMORY_BUILDERS,
            lambda key, f: MemoryEntry(key, f, origin, (f.__doc__ or "").strip()),
            "memory",
            name,
            replace,
        )(fn)
        _MEMORY_CACHE.pop((name or fn.__name__).strip().lower(), None)
        return fn

    return decorator


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------
def scheme_names() -> Tuple[str, ...]:
    """All registered scheme names, built-ins first (registration order)."""
    _ensure_ready()
    return tuple(_SCHEMES)


def workload_names() -> Tuple[str, ...]:
    """All registered workload names, built-ins first (registration order)."""
    _ensure_ready()
    return tuple(_WORKLOADS)


def memory_names() -> Tuple[str, ...]:
    """All registered memory-technology names."""
    _ensure_ready()
    return tuple(_MEMORY_BUILDERS)


def scheme_entry(name: str) -> SchemeEntry:
    _ensure_ready()
    key = name.strip().upper()
    try:
        return _SCHEMES[key]
    except KeyError:
        raise RegistryError(
            f"unknown scheme {name!r}; registered schemes: {tuple(_SCHEMES)}"
        ) from None


def workload_entry(name: str) -> WorkloadEntry:
    _ensure_ready()
    key = name.strip().upper()
    try:
        return _WORKLOADS[key]
    except KeyError:
        raise RegistryError(
            f"unknown benchmark {name!r}; registered workloads: {tuple(_WORKLOADS)}"
        ) from None


def memory_entry(name: str) -> MemoryEntry:
    _ensure_ready()
    key = name.strip().lower()
    try:
        return _MEMORY_BUILDERS[key]
    except KeyError:
        raise RegistryError(
            f"unknown memory kind {name!r}; registered memories: "
            f"{tuple(_MEMORY_BUILDERS)}"
        ) from None


def _call_builder(fn: Callable, args, infra: Dict, params: Dict, what: str):
    """Call a builder, dropping unsupported *infra* kwargs only.

    Infra kwargs (seed / entropy_by_bit / scale) are conveniences every
    builder may ignore.  User *params* are part of the spec's cache
    identity, so an unknown one is an error — silently dropping it
    would cache stock results under a parameterized key.
    """
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return fn(*args, **infra, **params)
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    ):
        return fn(*args, **infra, **params)
    allowed = set(signature.parameters)
    unknown = sorted(k for k in params if k not in allowed)
    if unknown:
        raise RegistryError(
            f"{what} builder {getattr(fn, '__name__', fn)!r} does not "
            f"accept parameter(s) {unknown}; accepted: {sorted(allowed)}"
        )
    kept = {k: v for k, v in infra.items() if k in allowed}
    return fn(*args, **kept, **params)


def make_scheme(
    name: str,
    address_map,
    seed: int = 0,
    entropy_by_bit=None,
    **params,
):
    """Build the registered scheme *name* against *address_map*.

    ``seed`` and ``entropy_by_bit`` are forwarded only when the
    builder's signature accepts them, so simple deterministic builders
    need not declare either.  Unknown *params* raise
    :class:`RegistryError` (they would otherwise silently change the
    cache key without changing the result).
    """
    entry = scheme_entry(name)
    return _call_builder(
        entry.builder, (address_map,),
        {"seed": seed, "entropy_by_bit": entropy_by_bit}, params, "scheme",
    )


def make_workload(name: str, scale: float = 1.0, **params):
    """Build the registered workload *name* at trace scale *scale*.

    Unknown *params* raise :class:`RegistryError`.
    """
    entry = workload_entry(name)
    return _call_builder(entry.builder, (), {"scale": scale}, params, "workload")


def memory_config(name: str) -> MemoryConfig:
    """The (memoized) :class:`MemoryConfig` registered under *name*."""
    key = name.strip().lower()
    if key not in _MEMORY_CACHE:
        config = memory_entry(key).builder()
        if not isinstance(config, MemoryConfig):
            raise RegistryError(
                f"memory builder {key!r} returned {type(config).__name__}, "
                f"expected MemoryConfig"
            )
        _MEMORY_CACHE[key] = config
    return _MEMORY_CACHE[key]


# ----------------------------------------------------------------------
# Plugins
# ----------------------------------------------------------------------
def load_entry_point(spec: str) -> None:
    """Import and register the plugin *spec* (``pkg.module[:attr]``).

    Importing the module runs any ``@register_*`` decorators in it.
    When ``:attr`` names a callable that the import did not already
    register, it is registered under its function name, classified by
    its signature: a first parameter called ``address_map`` makes it a
    **scheme** builder, a ``scale`` parameter makes it a **workload**
    builder; anything else must self-register with the decorators.
    """
    spec = spec.strip()
    if not spec:
        return
    module_name, _, attr = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise RegistryError(f"cannot import plugin {spec!r}: {error}") from None
    if not attr:
        return
    try:
        fn = getattr(module, attr)
    except AttributeError:
        raise RegistryError(
            f"plugin module {module_name!r} has no attribute {attr!r}"
        ) from None
    if not callable(fn):
        raise RegistryError(f"plugin attribute {spec!r} is not callable")
    already = any(
        entry.builder is fn
        for table in (_SCHEMES, _WORKLOADS, _MEMORY_BUILDERS)
        for entry in table.values()
    )
    if already:
        return
    # No replace: names are cache identity, so a plugin function that
    # happens to be called e.g. `pae` must not silently shadow the
    # built-in (it would serve the built-in's cached records).
    try:
        parameters = list(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        parameters = []
    if parameters and parameters[0] == "address_map":
        register_scheme(fn.__name__)(fn)
    elif "scale" in parameters:
        register_workload(fn.__name__)(fn)
    else:
        raise RegistryError(
            f"cannot classify plugin {spec!r}: scheme builders take "
            f"'address_map' first, workload builders take 'scale'; or "
            f"have the module self-register with @register_scheme / "
            f"@register_workload"
        )


def load_plugins(specs: str) -> None:
    """Load every entry point in a comma-separated list (idempotent).

    Commas only — ``:`` is the module/attribute separator inside one
    entry point, so a pathsep split would tear entries apart.
    """
    for chunk in specs.split(","):
        chunk = chunk.strip()
        if chunk and chunk not in _LOADED_PLUGINS:
            # Mark as loaded only on success, so a transient import
            # failure is retried (and keeps its real error message)
            # rather than decaying into "unknown scheme" later.
            load_entry_point(chunk)
            _LOADED_PLUGINS.add(chunk)
