"""Workload trace model.

The simulator is trace-driven: a workload is a sequence of kernels,
a kernel a sequence of Thread Blocks (TBs), a TB a set of warps, and
a warp an ordered stream of *coalesced* memory transactions with
per-transaction compute gaps (cycles of non-memory work preceding the
request).  This mirrors the paper's methodology: entropy is computed
from the per-TB request addresses, and the TB scheduler issues TBs in
identifier order.

Address convention: transaction addresses are 128-byte aligned input
(pre-mapping) physical addresses in the 30-bit space of the Hynix map
(or the 32-bit stacked space).  Compute intensity is captured by the
gaps plus each workload's ``instructions_per_request``, which is
calibrated against the paper's Table II APKI column
(instructions_per_request = 1000 / APKI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["WarpTrace", "TBTrace", "KernelTrace", "Workload"]


@dataclass(frozen=True)
class WarpTrace:
    """One warp's ordered stream of coalesced transactions.

    ``gaps[i]`` cycles of compute precede request *i*; ``writes[i]``
    marks stores (fire-and-forget in the pipeline model).
    """

    gaps: np.ndarray
    addresses: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        gaps = np.ascontiguousarray(self.gaps, dtype=np.int64)
        addresses = np.ascontiguousarray(self.addresses, dtype=np.uint64)
        writes = np.ascontiguousarray(self.writes, dtype=bool)
        if not (len(gaps) == len(addresses) == len(writes)):
            raise ValueError(
                f"warp trace arrays disagree on length: "
                f"{len(gaps)}/{len(addresses)}/{len(writes)}"
            )
        if len(gaps) and gaps.min() < 0:
            raise ValueError("compute gaps must be non-negative")
        object.__setattr__(self, "gaps", gaps)
        object.__setattr__(self, "addresses", addresses)
        object.__setattr__(self, "writes", writes)

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def n_requests(self) -> int:
        return len(self.addresses)

    @classmethod
    def from_addresses(
        cls, addresses, gap: int = 0, writes=None
    ) -> "WarpTrace":
        """Build a trace with a uniform compute gap before each request."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        n = len(addresses)
        if writes is None:
            writes = np.zeros(n, dtype=bool)
        return cls(
            gaps=np.full(n, gap, dtype=np.int64),
            addresses=addresses,
            writes=np.asarray(writes, dtype=bool),
        )


@dataclass(frozen=True)
class TBTrace:
    """One Thread Block: its identifier and warp streams."""

    tb_id: int
    warps: Tuple[WarpTrace, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "warps", tuple(self.warps))
        if not self.warps:
            raise ValueError(f"TB {self.tb_id} has no warps")

    @property
    def n_warps(self) -> int:
        return len(self.warps)

    @property
    def n_requests(self) -> int:
        return sum(len(w) for w in self.warps)

    def addresses(self) -> np.ndarray:
        """All request addresses of the TB (entropy analysis input)."""
        parts = [w.addresses for w in self.warps if len(w)]
        if not parts:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(parts)


@dataclass(frozen=True)
class KernelTrace:
    """One kernel launch: TBs in identifier (issue) order."""

    name: str
    tbs: Tuple[TBTrace, ...]

    def __post_init__(self) -> None:
        tbs = tuple(self.tbs)
        if not tbs:
            raise ValueError(f"kernel {self.name!r} has no TBs")
        ids = [tb.tb_id for tb in tbs]
        if ids != sorted(ids) or len(set(ids)) != len(ids):
            raise ValueError(f"kernel {self.name!r} TB ids must be unique and ascending")
        object.__setattr__(self, "tbs", tbs)

    @property
    def n_tbs(self) -> int:
        return len(self.tbs)

    @property
    def n_requests(self) -> int:
        return sum(tb.n_requests for tb in self.tbs)

    def tb_address_arrays(self) -> List[np.ndarray]:
        """Per-TB address arrays in TB order (window-entropy input)."""
        return [tb.addresses() for tb in self.tbs]


@dataclass(frozen=True)
class Workload:
    """A complete GPU-compute application trace.

    Attributes
    ----------
    name / abbreviation:
        Full and short benchmark names (Table II).
    kernels:
        Kernel traces in launch order; kernels execute back-to-back
        with a barrier between them (TBs of different kernels never
        co-execute, paper Section III-A).
    instructions_per_request:
        Dynamic instructions per memory request — 1000/APKI from
        Table II.  Drives the GPU dynamic power estimate.
    expected_valley:
        Whether the paper classifies the benchmark as having an
        entropy valley overlapping the channel/bank bits (the top ten
        rows of Table II) — used by validation tests.
    """

    name: str
    abbreviation: str
    kernels: Tuple[KernelTrace, ...]
    instructions_per_request: float = 100.0
    expected_valley: bool = True
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernels", tuple(self.kernels))
        if not self.kernels:
            raise ValueError(f"workload {self.name!r} has no kernels")
        if self.instructions_per_request <= 0:
            raise ValueError("instructions_per_request must be positive")

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    @property
    def n_tbs(self) -> int:
        return sum(k.n_tbs for k in self.kernels)

    @property
    def n_requests(self) -> int:
        return sum(k.n_requests for k in self.kernels)

    @property
    def approx_instructions(self) -> float:
        """Estimated dynamic instruction count (for APKI / power math)."""
        return self.n_requests * self.instructions_per_request

    @property
    def apki(self) -> float:
        """Memory accesses per kilo-instruction implied by the trace."""
        return 1000.0 / self.instructions_per_request

    def entropy_kernel_inputs(self) -> List[Tuple[List[np.ndarray], int]]:
        """Kernel inputs for application_entropy_profile: (TB arrays, weight)."""
        return [(k.tb_address_arrays(), k.n_requests) for k in self.kernels]

    def __repr__(self) -> str:
        return (
            f"Workload({self.abbreviation!r}, kernels={self.n_kernels}, "
            f"tbs={self.n_tbs}, requests={self.n_requests})"
        )
