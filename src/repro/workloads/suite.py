"""The 16 GPU-compute benchmarks of the paper's Table II.

Each builder synthesizes the *address structure* of its benchmark —
thread-block decomposition, per-warp coalesced transactions, kernel
sequence — scaled so a trace simulates in seconds rather than hours.
The paper's numbers that matter are encoded per benchmark:

* ``instructions_per_request`` = 1000 / APKI (Table II), which drives
  compute gaps and the GPU power estimate,
* ``expected_valley`` — the paper's grouping: the first ten
  benchmarks have entropy valleys overlapping the channel/bank bits,
  the last six do not (validated by tests against our entropy metric),
* kernel structure (e.g. LU's per-step kernels, NW's per-diagonal
  kernels, DWT2D's per-level passes) sampled down to a representative
  subset recorded in ``metadata["paper_kernels"]``.

The valley mechanism (Section II of the paper): a valley appears when
the TBs that co-execute (a window of consecutive TB ids) share their
column-derived address bits — i.e. the *slow* thread-block dimension
feeds the bits the Hynix map uses for channel/bank selection.  Valley
benchmarks below therefore iterate their TB grids column-major
(x/column slow), while non-valley benchmarks stream row-major or
access memory irregularly.

All builders take ``scale`` (trace size multiplier) and are fully
deterministic for a given seed.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import registry
from .base import KernelTrace, TBTrace, Workload, WarpTrace
from .patterns import (
    TXN_BYTES,
    banded_rows,
    butterfly_pass,
    column_walk,
    make_tb,
    pack_warps,
    random_lines,
    row_segment,
    strided_gather,
    tile_rows,
)

__all__ = [
    "BENCHMARK_BUILDERS",
    "VALLEY_BENCHMARKS",
    "NON_VALLEY_BENCHMARKS",
    "ALL_BENCHMARKS",
    "TABLE2",
    "build_workload",
    "build_suite",
    "srad2_kernel1",
    "dwt2d_kernel1",
]

# Table II of the paper: APKI, MPKI, #kernels, #instructions (B).
TABLE2: Dict[str, Tuple[float, float, int, float]] = {
    "MT": (7.44, 5.69, 4, 0.19),
    "LU": (12.32, 1.97, 1022, 2.22),
    "GS": (9.09, 0.01, 510, 0.43),
    "NW": (5.25, 5.12, 255, 0.21),
    "LPS": (2.27, 1.66, 2, 2.33),
    "SC": (4.24, 3.58, 50, 1.71),
    "SRAD2": (3.29, 1.85, 4, 2.43),
    "DWT2D": (1.56, 1.21, 10, 0.33),
    "HS": (0.71, 0.08, 1, 1.3),
    "SP": (2.17, 2.16, 1, 0.12),
    "FWT": (2.69, 1.38, 22, 4.38),
    "NN": (2.33, 0.2, 4, 0.31),
    "SPMV": (5.95, 2.75, 50, 0.19),
    "LM": (18.23, 0.01, 1, 2.11),
    "MUM": (25.63, 22.53, 2, 0.23),
    "BFS": (26.92, 18.14, 24, 0.46),
}

VALLEY_BENCHMARKS: Tuple[str, ...] = (
    "MT", "LU", "GS", "NW", "LPS", "SC", "SRAD2", "DWT2D", "HS", "SP",
)
NON_VALLEY_BENCHMARKS: Tuple[str, ...] = ("FWT", "NN", "SPMV", "LM", "MUM", "BFS")
ALL_BENCHMARKS: Tuple[str, ...] = VALLEY_BENCHMARKS + NON_VALLEY_BENCHMARKS

# Array base addresses, spread through the 1 GB space so different
# data structures contribute different high bits.
_MB = 1 << 20
_BASES = [i * 48 * _MB for i in range(20)]


def _ipr(abbr: str) -> float:
    """instructions per request = 1000 / APKI."""
    return 1000.0 / TABLE2[abbr][0]


def _gap(abbr: str) -> int:
    """Per-warp compute gap in cycles, derived from compute intensity."""
    return max(2, round(_ipr(abbr) / 12))


def _scaled(value: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(value * scale)))


def _finish(
    abbr: str,
    name: str,
    kernels: Sequence[KernelTrace],
    valley: bool,
    **metadata,
) -> Workload:
    apki, mpki, paper_kernels, insns_b = TABLE2[abbr]
    metadata = dict(metadata)
    metadata.setdefault("paper_apki", apki)
    metadata.setdefault("paper_mpki", mpki)
    metadata.setdefault("paper_kernels", paper_kernels)
    metadata.setdefault("paper_instructions_b", insns_b)
    return Workload(
        name=name,
        abbreviation=abbr,
        kernels=tuple(kernels),
        instructions_per_request=_ipr(abbr),
        expected_valley=valley,
        metadata=metadata,
    )


def _jitter_lines(rng: np.random.Generator, max_lines: int) -> int:
    """Per-TB start jitter in whole transactions (BVR diversity)."""
    return int(rng.integers(0, max_lines)) * TXN_BYTES


# ----------------------------------------------------------------------
# Valley benchmarks
# ----------------------------------------------------------------------
def mt(scale: float = 1.0, seed: int = 11) -> Workload:
    """Matrix Transpose (CUDA SDK).

    The strided (uncoalesced) side of the transpose walks matrix
    columns: every request of a TB shares the column-derived bits
    7-11, and the TB grid iterates column-major (column chunk slow,
    1 MB row band fast).  Co-running TBs therefore agree on the
    channel/bank bits while their diversity sits at bits >= 20 — the
    archetypal entropy valley (paper Figs. 2 and 5a).
    """
    gap = _gap("MT")
    pitch = 4096  # 1024 floats per row
    n_bands = _scaled(110, scale, minimum=24)  # fast: 1 MB row bands
    kernels = []
    for k in range(4):
        # Each kernel transposes one column panel: *every* TB of the
        # kernel shares the panel's column bits, so all concurrent
        # requests agree on the channel/bank bits regardless of how
        # many TBs the hardware co-schedules — the paper's MT is its
        # most dramatic valley benchmark (up to 7.5x, Fig. 12).
        a_base = _BASES[0] + k * 12 * _MB
        b_base = a_base + 512 * 1024  # free space between A's bands
        col_byte = (k * 3) * 128
        tbs = []
        for band in range(n_bands):
            # 13 rows per tile: an odd, non-power-aligned count keeps
            # every XOR-subset of the row bits biased away from an
            # exact 0.5 BVR, so the *mapped* addresses' entropy is
            # visible to the window metric (Fig. 10).
            rows = banded_rows(pitch, band, r0=0, count=13)
            reads = column_walk(a_base, pitch, rows, col_byte)
            # Second 128 B column of the same tile: stays inside the
            # frozen bits (bit 7 is a column-low bit, not a channel bit).
            extra = column_walk(a_base, pitch, rows[:7], col_byte + 128)
            writes = column_walk(b_base, pitch, rows, col_byte)
            txns = np.concatenate([reads, extra, writes])
            flags = np.concatenate([
                np.zeros(len(reads) + 7, dtype=bool),
                np.ones(len(writes), dtype=bool),
            ])
            tbs.append(make_tb(band, txns, flags, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"transpose_k{k}", tuple(tbs)))
    return _finish("MT", "Matrix Transpose", kernels, valley=True)


def lu(scale: float = 1.0, seed: int = 12) -> Workload:
    """LU Decomposition (CUDA SDK): right-looking factorization.

    Each step k launches a kernel whose TBs walk matrix *columns*
    (stride = row pitch), column chunks slow / row chunks fast.
    The pure column walks give LU its deep, wide valley (Fig. 5b).
    """
    gap = _gap("LU")
    pitch = 16384  # 4096 floats per row
    band_stride = 4 * _MB  # 256-row bands: window entropy at bits >= 22
    steps = _scaled(16, scale, minimum=4)
    kernels = []
    base = _BASES[2]
    for s in range(steps):
        k_col = (s * 37) % 2048
        col_chunks = max(2, 6 - s // 4)
        n_bands = 8
        tbs = []
        tb_id = 0
        for jc in range(col_chunks):       # slow: column chunk
            # Column chunks are 512 columns apart: stepping jc moves
            # the bank bits, never the channel bits, so windows that
            # straddle a chunk boundary keep the channel concentrated.
            col_byte = ((k_col * 4) + jc * 2048) % pitch
            for band in range(n_bands):    # fast: 4 MB row band
                rows = banded_rows(pitch, band, r0=0, count=12,
                                   band_stride_bytes=band_stride)
                pivot = column_walk(base, pitch, rows, (k_col * 4) % pitch)
                target = column_walk(base, pitch, rows, col_byte)
                txns = np.concatenate([pivot, target, target])
                flags = np.concatenate([
                    np.zeros(len(pivot) + len(target), dtype=bool),
                    np.ones(len(target), dtype=bool),
                ])
                tbs.append(make_tb(tb_id, txns, flags, reqs_per_warp=6, gap=gap))
                tb_id += 1
        kernels.append(KernelTrace(f"lud_step{s}", tuple(tbs)))
    return _finish("LU", "LU Decomposition", kernels, valley=True)


def gs(scale: float = 1.0, seed: int = 13) -> Workload:
    """Gaussian Elimination (Rodinia): Fan1/Fan2 kernel pairs.

    The 256 KB matrix is LLC-resident (paper MPKI 0.01), so the valley
    hurts through LLC-slice imbalance rather than DRAM.
    """
    gap = _gap("GS")
    pitch = 1024  # 256 floats per row
    n_rows = 256
    steps = _scaled(16, scale, minimum=4)
    base = _BASES[3]
    kernels = []
    for s in range(steps):
        k = (s * n_rows // steps) % (n_rows - 32)
        # Fan1: normalize column k below the pivot.
        tbs = []
        rows_below = n_rows - k - 1
        for t in range(max(1, min(8, rows_below // 32))):
            rows = k + 1 + (np.arange(32) + t * 32) % max(rows_below, 1)
            txns = column_walk(base, pitch, rows, (k * 4) % pitch)
            tbs.append(make_tb(t, txns, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"fan1_{s}", tuple(tbs)))
        # Fan2: update the trailing submatrix, column chunks slow.
        tbs = []
        tb_id = 0
        col_chunks = max(1, min(6, (n_rows - k) // 32))
        for jc in range(col_chunks):
            col_byte = ((k + jc * 32) * 4) % pitch
            for rc in range(4):
                rows = k + 1 + (np.arange(16) + rc * 16) % max(rows_below, 1)
                reads = column_walk(base, pitch, rows, col_byte)
                writes = column_walk(base, pitch, rows, col_byte)
                txns = np.concatenate([reads, writes])
                flags = np.concatenate([
                    np.zeros(len(reads), dtype=bool), np.ones(len(writes), dtype=bool)
                ])
                tbs.append(make_tb(tb_id, txns, flags, reqs_per_warp=8, gap=gap))
                tb_id += 1
        kernels.append(KernelTrace(f"fan2_{s}", tuple(tbs)))
    return _finish("GS", "Gaussian Elimination", kernels, valley=True)


def nw(scale: float = 1.0, seed: int = 14) -> Workload:
    """Needleman-Wunsch (Rodinia): diagonal wavefront over 16x16 tiles.

    Each TB reads its tile's left column (stride = row pitch) and top
    row, then writes its scores.  One kernel per tile diagonal.
    """
    gap = _gap("NW")
    pitch = 8192  # 2048 ints per row
    base_ref = _BASES[4]
    base_score = _BASES[5]
    n_diags = _scaled(20, scale, minimum=6)
    grid_rows = 24  # tile-row bands, 1 MB apart
    kernels = []
    for d in range(1, n_diags + 1):
        length = min(d + 3, 16)
        tbs = []
        for t in range(length):
            # Tile (row-band d-t+..., column t % 4): columns span only
            # 4 x 64 B so channel bit 9 stays frozen; the wavefront's
            # diversity is in the 1 MB row bands.
            band = (d - t) % grid_rows
            col_byte = (t % 4) * 64
            rows = banded_rows(pitch, band, r0=0, count=12,
                               band_stride_bytes=2 * _MB)
            left = column_walk(base_score, pitch, rows, col_byte)
            ref = column_walk(base_ref, pitch, rows, col_byte)
            # The tile's top-row halo is a contiguous, channel-balanced
            # read (uniform BVR 0.5 at bits 7-9 for every TB, so the
            # window entropy valley is untouched).
            top = row_segment(base_score + int(rows[0]) * pitch, 0, 1024)
            scores = column_walk(base_score, pitch, rows, col_byte)
            txns = np.concatenate([left, ref, top, scores])
            flags = np.concatenate([
                np.zeros(len(left) + len(ref) + len(top), dtype=bool),
                np.ones(len(scores), dtype=bool),
            ])
            tbs.append(make_tb(t, txns, flags, reqs_per_warp=6, gap=gap))
        kernels.append(KernelTrace(f"nw_diag{d}", tuple(tbs)))
    return _finish("NW", "Needleman-Wunsch", kernels, valley=True)


def lps(scale: float = 1.0, seed: int = 15) -> Workload:
    """3D Laplace solver (LPS): z-marching column slabs, x-tiles slow."""
    gap = _gap("LPS")
    x_pitch = 4096           # 1024 floats per x-row
    plane = 4 * _MB          # 1024 rows per z-plane: z varies bits >= 22
    grid_x = 8               # slow: 128 B x-tiles
    grid_y = _scaled(48, scale, minimum=12)
    z_steps = 12
    kernels = []
    for k, (src, dst) in enumerate([(_BASES[6], _BASES[7]), (_BASES[7], _BASES[6])]):
        tbs = []
        tb_id = 0
        for bx in range(grid_x):        # slow: x tile -> channel bits fixed
            for by in range(grid_y):    # fast: y row (bits 12-17)
                reads = np.concatenate([
                    row_segment(src + z * plane + by * x_pitch, bx * 128, 128)
                    for z in range(z_steps)
                ])
                writes = np.concatenate([
                    row_segment(dst + z * plane + by * x_pitch, bx * 128, 128)
                    for z in range(0, z_steps, 2)
                ])
                txns = np.concatenate([reads, writes])
                flags = np.concatenate([
                    np.zeros(len(reads), dtype=bool), np.ones(len(writes), dtype=bool)
                ])
                tbs.append(make_tb(tb_id, txns, flags, reqs_per_warp=6, gap=gap))
                tb_id += 1
        kernels.append(KernelTrace(f"laplace_k{k}", tuple(tbs)))
    return _finish("LPS", "3D Laplace Solver", kernels, valley=True)


def sc(scale: float = 1.0, seed: int = 16) -> Workload:
    """StreamCluster (Rodinia): padded point records.

    Points live in 1 KB-padded records, so every gather shares the
    channel bits — a structural valley at bits 8-9 — while the small
    shared center table adds uniformly low-entropy accesses.
    """
    gap = _gap("SC")
    record_bytes = 1024
    points_per_tb = 48
    slot_bytes = 4 * _MB  # each TB's points live in a 4 MB-aligned slot
    base_points = _BASES[8]
    base_centers = _BASES[8] + 512 * 1024  # free space inside slot 0
    n_tbs = _scaled(80, scale, minimum=12)
    iterations = 6
    kernels = []
    for it in range(iterations):
        center_lines = random_lines(
            np.random.default_rng(seed + it), base_centers, 16 * 1024, 4
        )
        tbs = []
        for t in range(n_tbs):
            # 1 KB-padded records: channel/bank bits of every gather are
            # zero.  TB slots are 1 MB apart, so inter-TB diversity sits
            # at bits >= 20 where only broad harvesting finds it.
            slot = base_points + ((t + it * 13) % n_tbs) * slot_bytes
            idx = np.arange(points_per_tb)
            points = strided_gather(slot, record_bytes, idx)
            # Sequential scan of the per-point weight array: contiguous,
            # channel-balanced traffic.  Its BVR contribution at bits
            # 7-10 is exactly 0.5 for every TB, so it adds no window
            # entropy and the structural valley survives, but it keeps
            # part of the bandwidth usable under BASE (the paper's SC
            # gains are solid, not extreme).
            weights = row_segment(base_points + 2 * _MB, t * 2048, 2048)
            # Every TB reads the same (cached) center table: identical
            # BVR contribution across TBs, so these accesses add no
            # window entropy — the structural valley stays.
            txns = np.concatenate([points, weights, center_lines])
            tbs.append(make_tb(t, txns, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"pgain_{it}", tuple(tbs)))
    return _finish("SC", "StreamCluster", kernels, valley=True)


def srad2(scale: float = 1.0, seed: int = 17) -> Workload:
    """SRAD v2 (Rodinia): 2D diffusion stencil, column tiles slow."""
    gap = _gap("SRAD2")
    pitch = 8192  # 2048 floats per row
    band_stride = 8 * _MB  # sparse row bands: window entropy at bits >= 23
    grid_x = _scaled(16, math.sqrt(scale), minimum=4)   # slow: column chunk
    n_bands = _scaled(14, math.sqrt(scale), minimum=6)  # fast
    kernels = []
    for k in range(4):
        img = _BASES[10] + (k % 2) * 2 * _MB
        out = img + 4 * _MB  # free space between img's 8 MB bands
        tbs = []
        tb_id = 0
        for bx in range(grid_x):
            col_byte = bx * 128
            for band in range(n_bands):
                rows = banded_rows(pitch, band, r0=0, count=12,
                                   band_stride_bytes=band_stride)
                center = column_walk(img, pitch, rows, col_byte)
                east = column_walk(img, pitch, rows, (col_byte + 128) % pitch)
                writes = column_walk(out, pitch, rows, col_byte)
                txns = np.concatenate([center, east, writes])
                flags = np.concatenate([
                    np.zeros(len(center) + len(east), dtype=bool),
                    np.ones(len(writes), dtype=bool),
                ])
                tbs.append(make_tb(tb_id, txns, flags, reqs_per_warp=6, gap=gap))
                tb_id += 1
        kernels.append(KernelTrace(f"srad2_k{k}", tuple(tbs)))
    return _finish("SRAD2", "SRAD v2", kernels, valley=True)


def dwt2d(scale: float = 1.0, seed: int = 18) -> Workload:
    """DWT2D (Rodinia): multi-level wavelet transform.

    Each level doubles the row stride of the vertical pass, moving the
    valley across the address bits — the per-kernel valleys are narrow
    but the application profile's is broad (paper Fig. 5i vs 5j).
    """
    gap = _gap("DWT2D")
    pitch = 4096
    levels = 4
    base = _BASES[12]
    out = _BASES[13]
    kernels = []
    for level in range(levels):
        step = 1 << level
        grid_x = max(2, 12 >> level)        # slow: column tiles
        n_bands = _scaled(14, scale, minimum=6)
        # Vertical pass: rows step by 2**level inside 1 MB bands. The
        # growing step drags the within-TB variation across different
        # bits per level — narrow per-kernel valleys that merge into
        # the broad application valley of the paper's Fig. 5i.
        tbs = []
        tb_id = 0
        for bx in range(grid_x):
            for band in range(n_bands):
                count = 12 if step * 12 <= 64 else 64 // step
                rows = banded_rows(pitch, band, r0=0, count=count, step=step)
                reads = column_walk(base, pitch, rows, bx * 128)
                writes = column_walk(out, pitch, rows[: max(1, count // 2)], bx * 128)
                txns = np.concatenate([reads, writes])
                flags = np.concatenate([
                    np.zeros(len(reads), dtype=bool), np.ones(len(writes), dtype=bool)
                ])
                tbs.append(make_tb(tb_id, txns, flags, reqs_per_warp=6, gap=gap))
                tb_id += 1
        kernels.append(KernelTrace(f"dwt_v{level}", tuple(tbs)))
        # Horizontal pass: contiguous row segments at halved width.
        tbs = []
        width = max(256, 2048 >> level)
        for t in range(_scaled(24, scale, minimum=6)):
            row = (t * 7 + level) % 1024
            txns = row_segment(base + row * pitch, 0, width)
            tbs.append(make_tb(t, txns, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"dwt_h{level}", tuple(tbs)))
    return _finish("DWT2D", "DWT2D", kernels, valley=True)


def hs(scale: float = 1.0, seed: int = 19) -> Workload:
    """Hotspot (Rodinia): compute-bound 2D stencil (APKI 0.71).

    Shares the column-slow tiling of the other stencils but the large
    compute gaps make it insensitive to the memory system.
    """
    gap = 2 * _gap("HS")  # Hotspot is the suite's most compute-bound code
    pitch = 2048  # 512 floats per row
    grid_x = _scaled(12, math.sqrt(scale), minimum=4)
    grid_y = _scaled(8, math.sqrt(scale), minimum=4)
    temp = _BASES[14]
    power = _BASES[15]
    tbs = []
    tb_id = 0
    for bx in range(grid_x):
        for band in range(grid_y):
            rows = banded_rows(pitch, band, r0=0, count=12)
            t_reads = column_walk(temp, pitch, rows, (bx * 128) % pitch)
            p_reads = column_walk(power, pitch, rows[:6], (bx * 128) % pitch)
            writes = column_walk(temp, pitch, rows[:6], (bx * 128) % pitch)
            txns = np.concatenate([t_reads, p_reads, writes])
            flags = np.concatenate([
                np.zeros(len(t_reads) + len(p_reads), dtype=bool),
                np.ones(len(writes), dtype=bool),
            ])
            tbs.append(make_tb(tb_id, txns, flags, reqs_per_warp=6, gap=gap))
            tb_id += 1
    return _finish("HS", "Hotspot", [KernelTrace("hotspot", tuple(tbs))], valley=True)


def sp(scale: float = 1.0, seed: int = 20) -> Workload:
    """Scalar Product (CUDA SDK): padded vector-pair dot products.

    Each TB reduces one vector pair stored in 8 KB-padded segments of
    which only the 512 B head is touched — all transactions share
    channel bit 9, the structural half-valley behind SP's moderate
    speedup.
    """
    gap = _gap("SP")
    seg_stride = 8192
    width = 512
    n_tbs = _scaled(224, scale, minimum=16)
    base_a = _BASES[16]
    base_b = _BASES[17]
    tbs = []
    for t in range(n_tbs):
        a = row_segment(base_a + t * seg_stride, 0, width)
        b = row_segment(base_b + t * seg_stride, 0, width)
        # Block partial sums are 4 B each, so 32 consecutive TBs share
        # one result transaction — like the segments, it contributes
        # no entropy to the channel bits.
        partial = row_segment(base_a + 40 * _MB, (t // 32) * 128, 128)
        txns = np.concatenate([a, b, partial])
        flags = np.zeros(len(txns), dtype=bool)
        flags[-len(partial):] = True
        tbs.append(make_tb(t, txns, flags, reqs_per_warp=4, gap=gap))
    return _finish("SP", "Scalar Product", [KernelTrace("dot", tuple(tbs))], valley=True)


# ----------------------------------------------------------------------
# Non-valley benchmarks
# ----------------------------------------------------------------------
def fwt(scale: float = 1.0, seed: int = 21) -> Workload:
    """Fast Walsh Transform (CUDA SDK): butterfly passes.

    Power-of-two strides vary per stage, and consecutive TBs cover
    consecutive element groups, so entropy concentrates in the lower
    bits without a stable valley.
    """
    gap = _gap("FWT")
    n_elems = 1 << 20
    base = _BASES[18]
    stages = _scaled(8, scale, minimum=4)
    groups = 96
    kernels = []
    for s in range(stages):
        stage = 2 + (s * 2) % 16
        tbs = []
        for g in range(_scaled(groups, scale, minimum=12)):
            txns = butterfly_pass(base, n_elems, 4, stage, g, group_elems=96)
            tbs.append(make_tb(g, txns, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"fwt_s{stage}", tuple(tbs)))
    return _finish("FWT", "Fast Walsh Transform", kernels, valley=False)


def nn(scale: float = 1.0, seed: int = 22) -> Workload:
    """NN (nearest neighbor): streaming record scans with per-TB skew."""
    gap = _gap("NN")
    rng = np.random.default_rng(seed)
    base = _BASES[19]
    n_tbs = _scaled(96, scale, minimum=12)
    kernels = []
    for k in range(4):
        tbs = []
        for t in range(n_tbs):
            start = t * 8192 + _jitter_lines(rng, 16) + k * 2 * _MB
            width = int(rng.integers(2048, 4097))
            txns = row_segment(base, start, width)
            tbs.append(make_tb(t, txns, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"nn_k{k}", tuple(tbs)))
    return _finish("NN", "Nearest Neighbor", kernels, valley=False)


def spmv(scale: float = 1.0, seed: int = 23) -> Workload:
    """SpMV (Parboil): CSR rows plus random x-vector gathers."""
    gap = _gap("SPMV")
    rng = np.random.default_rng(seed)
    vals = _BASES[0] + 30 * _MB
    xvec = _BASES[1] + 30 * _MB
    n_tbs = _scaled(48, scale, minimum=8)
    kernels = []
    for k in range(8):
        tbs = []
        for t in range(n_tbs):
            row_bytes = int(rng.integers(1536, 3072))
            stream = row_segment(vals, (t * 4096 + k * 512 * 1024), row_bytes)
            gathers = random_lines(rng, xvec, 512 * 1024, 10)
            txns = np.concatenate([stream, gathers])
            tbs.append(make_tb(t, txns, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"spmv_k{k}", tuple(tbs)))
    return _finish("SPMV", "SpMV", kernels, valley=False)


def lm(scale: float = 1.0, seed: int = 24) -> Workload:
    """LavaMD (Rodinia): per-box particle interactions, cache friendly."""
    gap = _gap("LM")
    rng = np.random.default_rng(seed)
    box_bytes = 2048
    boxes_per_dim = 8
    n_boxes = boxes_per_dim ** 3
    base = _BASES[2] + 30 * _MB
    tbs = []
    n_tbs = _scaled(n_boxes, scale, minimum=27)
    for t in range(n_tbs):
        box = t % n_boxes
        own = row_segment(base + box * box_bytes, 0, box_bytes)
        neigh_count = int(rng.integers(6, 14))
        offsets = rng.integers(-2, 3, size=(neigh_count, 3))
        neigh_boxes = []
        bz, by, bx = (box // 64) % 8, (box // 8) % 8, box % 8
        for dz, dy, dx in offsets:
            nb = (((bz + dz) % 8) * 64 + ((by + dy) % 8) * 8 + (bx + dx) % 8)
            neigh_boxes.append(nb)
        neigh = np.concatenate([
            row_segment(base + nb * box_bytes, 0, 256) for nb in neigh_boxes
        ])
        txns = np.concatenate([own, neigh])
        tbs.append(make_tb(t, txns, reqs_per_warp=8, gap=gap))
    return _finish("LM", "LavaMD", [KernelTrace("lavamd", tuple(tbs))], valley=False)


def mum(scale: float = 1.0, seed: int = 25) -> Workload:
    """MUMmerGPU (Rodinia): random suffix-tree descents (MPKI 22.5)."""
    gap = _gap("MUM")
    rng = np.random.default_rng(seed)
    tree = _BASES[3] + 30 * _MB
    queries = _BASES[4] + 30 * _MB
    n_tbs = _scaled(128, scale, minimum=16)
    kernels = []
    for k in range(2):
        tbs = []
        for t in range(n_tbs):
            walk_len = int(rng.integers(32, 64))
            walk = random_lines(rng, tree, 192 * _MB, walk_len)
            query = row_segment(queries, t * 2048 + k * _MB, 512)
            txns = np.concatenate([walk, query])
            tbs.append(make_tb(t, txns, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"mummer_k{k}", tuple(tbs)))
    return _finish("MUM", "MUMmerGPU", kernels, valley=False)


def bfs(scale: float = 1.0, seed: int = 26) -> Workload:
    """BFS (Rodinia): frontier expansion over an irregular graph."""
    gap = _gap("BFS")
    rng = np.random.default_rng(seed)
    nodes = _BASES[5] + 30 * _MB
    edges = _BASES[6] + 30 * _MB
    levels = 8
    kernels = []
    for level in range(levels):
        frontier = int(24 + 40 * math.sin(math.pi * (level + 1) / levels) ** 2)
        n_tbs = _scaled(frontier, scale, minimum=6)
        tbs = []
        for t in range(n_tbs):
            node_reads = random_lines(rng, nodes, 32 * _MB, int(rng.integers(12, 24)))
            edge_start = int(rng.integers(0, 128 * _MB // 4096)) * 4096
            edge_reads = row_segment(edges, edge_start, int(rng.integers(512, 2048)))
            txns = np.concatenate([node_reads, edge_reads])
            writes = np.zeros(len(txns), dtype=bool)
            writes[: len(node_reads) // 4] = True  # visited-flag updates
            tbs.append(make_tb(t, txns, writes, reqs_per_warp=8, gap=gap))
        kernels.append(KernelTrace(f"bfs_l{level}", tuple(tbs)))
    return _finish("BFS", "BFS", kernels, valley=False)


# ----------------------------------------------------------------------
# Kernel views (the paper's Fig. 5h / 5j single-kernel profiles)
# ----------------------------------------------------------------------
def srad2_kernel1(scale: float = 1.0, seed: int = 17) -> Workload:
    """SRAD2's first kernel in isolation (paper Fig. 5h)."""
    full = srad2(scale, seed)
    return _finish(
        "SRAD2", "SRAD v2 (kernel 1)", [full.kernels[0]], valley=True,
        kernel_view="SRAD2K1",
    )


def dwt2d_kernel1(scale: float = 1.0, seed: int = 18) -> Workload:
    """DWT2D's first vertical pass in isolation (paper Fig. 5j)."""
    full = dwt2d(scale, seed)
    return _finish(
        "DWT2D", "DWT2D (kernel 1)", [full.kernels[0]], valley=True,
        kernel_view="DWT2DK1",
    )


# ----------------------------------------------------------------------
# Registry: the Table II suite is just the pre-registered entries of
# repro.registry — user workloads register the same way.
# ----------------------------------------------------------------------
BENCHMARK_BUILDERS: Dict[str, Callable[..., Workload]] = {
    "MT": mt, "LU": lu, "GS": gs, "NW": nw, "LPS": lps, "SC": sc,
    "SRAD2": srad2, "DWT2D": dwt2d, "HS": hs, "SP": sp,
    "FWT": fwt, "NN": nn, "SPMV": spmv, "LM": lm, "MUM": mum, "BFS": bfs,
}

for _abbr, _builder in BENCHMARK_BUILDERS.items():
    registry.register_workload(_abbr, origin="builtin")(_builder)
del _abbr, _builder


def build_workload(abbr: str, scale: float = 1.0) -> Workload:
    """Build one registered workload by name (Table II or user-registered)."""
    try:
        return registry.make_workload(abbr, scale=scale)
    except registry.RegistryError as error:
        raise ValueError(str(error)) from None


def build_suite(
    scale: float = 1.0, names: Optional[Sequence[str]] = None
) -> Dict[str, Workload]:
    """Build the full suite (or a subset) keyed by abbreviation."""
    selected = tuple(names) if names is not None else ALL_BENCHMARKS
    return {abbr: build_workload(abbr, scale) for abbr in selected}
