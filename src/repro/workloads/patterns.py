"""Access-pattern building blocks for the benchmark suite.

These helpers generate *coalesced transaction* address streams (128 B
aligned) for the classic GPU-compute access idioms the paper's
benchmarks are built from:

* contiguous row segments (row-major streaming),
* column walks (one transaction per matrix row — the pattern behind
  the entropy valleys, cf. the paper's Fig. 2 TB-CM0 example),
* 2D tiles and stencil halos,
* butterfly (power-of-two stride) passes,
* irregular gathers (CSR sparse rows, graph frontiers, random walks).

All helpers return uint64 numpy arrays of byte addresses wrapped into
the given address-space size.  Packing transactions into warps is done
by :func:`pack_warps`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .base import TBTrace, WarpTrace

__all__ = [
    "TXN_BYTES",
    "align",
    "row_segment",
    "column_walk",
    "tile_rows",
    "strided_gather",
    "butterfly_pass",
    "banded_rows",
    "random_lines",
    "pack_warps",
    "make_tb",
]

TXN_BYTES = 128


def align(addresses, txn_bytes: int = TXN_BYTES) -> np.ndarray:
    """Align byte addresses down to transaction boundaries."""
    addr = np.asarray(addresses, dtype=np.uint64)
    mask = ~np.uint64(txn_bytes - 1)
    return addr & mask


def _wrap(addresses: np.ndarray, space_bits: int) -> np.ndarray:
    return addresses & np.uint64((1 << space_bits) - 1)


def row_segment(
    base: int, start_byte: int, width_bytes: int, space_bits: int = 30
) -> np.ndarray:
    """Transactions covering a contiguous byte range (row-major stream)."""
    if width_bytes <= 0:
        raise ValueError(f"width_bytes must be positive, got {width_bytes}")
    first = (base + start_byte) // TXN_BYTES
    last = (base + start_byte + width_bytes - 1) // TXN_BYTES
    txns = np.arange(first, last + 1, dtype=np.uint64) * np.uint64(TXN_BYTES)
    return _wrap(txns, space_bits)


def column_walk(
    base: int,
    row_bytes: int,
    rows: Sequence[int],
    col_byte: int,
    space_bits: int = 30,
) -> np.ndarray:
    """One transaction per row at a fixed column offset (column access).

    This is the TB-CM0 pattern of the paper's Figure 2: every request
    shares the column-derived low/middle address bits, so whichever
    DRAM resource those bits select receives *all* of the traffic.
    """
    if row_bytes <= 0:
        raise ValueError(f"row_bytes must be positive, got {row_bytes}")
    rows = np.asarray(rows, dtype=np.uint64)
    addrs = np.uint64(base) + rows * np.uint64(row_bytes) + np.uint64(col_byte)
    return _wrap(align(addrs), space_bits)


def tile_rows(
    base: int,
    row_bytes: int,
    row0: int,
    n_rows: int,
    col_byte: int,
    width_bytes: int,
    space_bits: int = 30,
) -> np.ndarray:
    """Transactions of a dense 2D tile, row by row."""
    parts = [
        row_segment(base + (row0 + r) * row_bytes, col_byte, width_bytes, space_bits)
        for r in range(n_rows)
    ]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint64)


def strided_gather(
    base: int,
    stride_bytes: int,
    indices: Sequence[int],
    space_bits: int = 30,
) -> np.ndarray:
    """Transactions at ``base + i * stride`` for each index (AoS gather)."""
    idx = np.asarray(indices, dtype=np.uint64)
    addrs = np.uint64(base) + idx * np.uint64(stride_bytes)
    return _wrap(align(addrs), space_bits)


def butterfly_pass(
    base: int,
    n_elements: int,
    elem_bytes: int,
    stage: int,
    group: int,
    group_elems: int,
    space_bits: int = 30,
) -> np.ndarray:
    """One butterfly group of an FFT/FWT-style pass.

    Group *group* of stage *stage* touches the element pairs
    ``(i, i + 2**stage)`` for ``i`` in the group's range; transactions
    are deduplicated in first-touch order.
    """
    if stage < 0:
        raise ValueError(f"stage must be non-negative, got {stage}")
    half = 1 << stage
    start = group * group_elems
    i = start + np.arange(group_elems, dtype=np.uint64)
    lo = i + (i // half) * half  # skip partner halves
    hi = lo + np.uint64(half)
    idx = np.concatenate([lo, hi]) % np.uint64(max(n_elements, 1))
    addrs = np.uint64(base) + idx * np.uint64(elem_bytes)
    lines = align(addrs)
    _, first = np.unique(lines, return_index=True)
    return _wrap(lines[np.sort(first)], space_bits)


def random_lines(
    rng: np.random.Generator,
    base: int,
    footprint_bytes: int,
    count: int,
    space_bits: int = 30,
) -> np.ndarray:
    """Uniform random transactions within a footprint (graph/tree walks)."""
    if footprint_bytes < TXN_BYTES:
        raise ValueError(f"footprint must hold at least one transaction")
    lines = rng.integers(0, footprint_bytes // TXN_BYTES, size=count, dtype=np.uint64)
    addrs = np.uint64(base) + lines * np.uint64(TXN_BYTES)
    return _wrap(addrs, space_bits)


def banded_rows(
    pitch_bytes: int,
    band: int,
    r0: int = 0,
    count: int = 16,
    step: int = 1,
    band_stride_bytes: int = 1 << 20,
) -> np.ndarray:
    """Matrix-row indices of a *band-aligned* row block.

    GPU-compute workloads frequently process a matrix in row blocks
    whose alignment is a large power of two (tile heights x pitch).
    With pitch ``2**p``, matrix-row bit *k* lands at address bit
    ``p + k``; choosing ``band_stride_bytes >= 2**20`` and keeping the
    local rows below ``2**18 / pitch`` pins address bits 18-19 (the
    least significant DRAM row bits of the Hynix map) to zero while
    putting the block-to-block variation at address bits >= 20.

    That is precisely the structure that defeats narrow-harvest
    mappings: PM's XOR sources (the lowest row bits) are dead, while
    the entropy PAE/FAE gather lives higher up (paper Section IV).
    """
    if pitch_bytes <= 0 or pitch_bytes & (pitch_bytes - 1):
        raise ValueError(f"pitch must be a positive power of two, got {pitch_bytes}")
    if band_stride_bytes % pitch_bytes:
        raise ValueError("band stride must be a whole number of rows")
    local_limit = max(1, (1 << 18) // pitch_bytes)
    local = r0 + np.arange(count, dtype=np.int64) * step
    if count and int(local.max()) >= local_limit:
        raise ValueError(
            f"local rows reach {int(local.max())} but only {local_limit} rows "
            f"keep address bits 18-19 dead at pitch {pitch_bytes}"
        )
    band_rows = band_stride_bytes // pitch_bytes
    return band * band_rows + local


def pack_warps(
    transactions: np.ndarray,
    writes: Optional[np.ndarray] = None,
    reqs_per_warp: int = 8,
    gap: int = 8,
) -> List[WarpTrace]:
    """Split a TB's transaction stream into warp traces.

    Consecutive chunks of *reqs_per_warp* transactions become one warp
    each, mirroring how a TB's warps jointly cover its working set.
    """
    if reqs_per_warp <= 0:
        raise ValueError(f"reqs_per_warp must be positive, got {reqs_per_warp}")
    transactions = np.asarray(transactions, dtype=np.uint64)
    if writes is None:
        writes = np.zeros(len(transactions), dtype=bool)
    writes = np.asarray(writes, dtype=bool)
    if len(writes) != len(transactions):
        raise ValueError("writes mask must match the transaction count")
    warps: List[WarpTrace] = []
    for start in range(0, len(transactions), reqs_per_warp):
        chunk = slice(start, start + reqs_per_warp)
        warps.append(
            WarpTrace(
                gaps=np.full(len(transactions[chunk]), gap, dtype=np.int64),
                addresses=transactions[chunk],
                writes=writes[chunk],
            )
        )
    return warps


def make_tb(
    tb_id: int,
    transactions: np.ndarray,
    writes: Optional[np.ndarray] = None,
    reqs_per_warp: int = 8,
    gap: int = 8,
) -> TBTrace:
    """Convenience: one TB from a flat transaction stream."""
    warps = pack_warps(transactions, writes, reqs_per_warp, gap)
    if not warps:
        raise ValueError(f"TB {tb_id} would have no transactions")
    return TBTrace(tb_id, tuple(warps))
