"""Workload substrate: trace model, pattern generators and the Table II suite."""

from .base import KernelTrace, TBTrace, Workload, WarpTrace
from .io import load_workload, save_workload
from .recipes import PATTERNS, RecipeError, build_recipe_workload, validate_recipe
from .patterns import (
    TXN_BYTES,
    align,
    butterfly_pass,
    column_walk,
    make_tb,
    pack_warps,
    random_lines,
    row_segment,
    strided_gather,
    tile_rows,
)
from .suite import (
    ALL_BENCHMARKS,
    BENCHMARK_BUILDERS,
    NON_VALLEY_BENCHMARKS,
    TABLE2,
    VALLEY_BENCHMARKS,
    build_suite,
    build_workload,
    dwt2d_kernel1,
    srad2_kernel1,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARK_BUILDERS",
    "KernelTrace",
    "PATTERNS",
    "RecipeError",
    "build_recipe_workload",
    "validate_recipe",
    "NON_VALLEY_BENCHMARKS",
    "TABLE2",
    "TBTrace",
    "TXN_BYTES",
    "VALLEY_BENCHMARKS",
    "WarpTrace",
    "Workload",
    "align",
    "build_suite",
    "build_workload",
    "butterfly_pass",
    "column_walk",
    "dwt2d_kernel1",
    "load_workload",
    "make_tb",
    "pack_warps",
    "save_workload",
    "random_lines",
    "row_segment",
    "srad2_kernel1",
    "strided_gather",
    "tile_rows",
]
