"""Workload trace import/export.

Downstream users will want to run *their own* traces through the
simulator (e.g. captured from a real profiler) and to archive the
synthetic suites used in a paper run.  This module round-trips a
:class:`~repro.workloads.base.Workload` through a single compressed
``.npz`` file.

Layout: all warps' arrays are concatenated into flat ``gaps`` /
``addresses`` / ``writes`` arrays plus index tables mapping each warp
to its ``(kernel, tb_id, slice)``, so a million-request workload is a
handful of numpy arrays rather than a pickle of nested objects (fast,
portable, and safe to load).
"""

from __future__ import annotations

import json
from typing import List

import numpy as np

from .base import KernelTrace, TBTrace, Workload, WarpTrace

__all__ = ["save_workload", "load_workload"]

_FORMAT_VERSION = 1


def save_workload(workload: Workload, path) -> None:
    """Serialize *workload* to a compressed ``.npz`` file."""
    gaps: List[np.ndarray] = []
    addresses: List[np.ndarray] = []
    writes: List[np.ndarray] = []
    warp_kernel: List[int] = []
    warp_tb: List[int] = []
    warp_lengths: List[int] = []
    kernel_names: List[str] = []
    for k_index, kernel in enumerate(workload.kernels):
        kernel_names.append(kernel.name)
        for tb in kernel.tbs:
            for warp in tb.warps:
                gaps.append(warp.gaps)
                addresses.append(warp.addresses)
                writes.append(warp.writes)
                warp_kernel.append(k_index)
                warp_tb.append(tb.tb_id)
                warp_lengths.append(len(warp))
    header = {
        "version": _FORMAT_VERSION,
        "name": workload.name,
        "abbreviation": workload.abbreviation,
        "instructions_per_request": workload.instructions_per_request,
        "expected_valley": workload.expected_valley,
        "description": workload.description,
        "kernel_names": kernel_names,
        "metadata": {
            key: (list(value) if isinstance(value, tuple) else value)
            for key, value in workload.metadata.items()
        },
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        gaps=np.concatenate(gaps) if gaps else np.empty(0, dtype=np.int64),
        addresses=(np.concatenate(addresses) if addresses
                   else np.empty(0, dtype=np.uint64)),
        writes=np.concatenate(writes) if writes else np.empty(0, dtype=bool),
        warp_kernel=np.asarray(warp_kernel, dtype=np.int64),
        warp_tb=np.asarray(warp_tb, dtype=np.int64),
        warp_lengths=np.asarray(warp_lengths, dtype=np.int64),
    )


def load_workload(path) -> Workload:
    """Rebuild a workload written by :func:`save_workload`.

    All trace invariants (TB ordering, array consistency) are
    re-validated by the normal constructors.
    """
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported workload file version {header.get('version')!r}"
            )
        gaps = data["gaps"]
        addresses = data["addresses"]
        writes = data["writes"]
        warp_kernel = data["warp_kernel"]
        warp_tb = data["warp_tb"]
        warp_lengths = data["warp_lengths"]

    offsets = np.concatenate([[0], np.cumsum(warp_lengths)])
    kernel_names = header["kernel_names"]
    # kernel index -> tb_id -> list of warps (insertion order preserved).
    per_kernel: List[dict] = [dict() for _ in kernel_names]
    for w in range(len(warp_lengths)):
        lo, hi = offsets[w], offsets[w + 1]
        warp = WarpTrace(gaps[lo:hi], addresses[lo:hi], writes[lo:hi])
        per_kernel[int(warp_kernel[w])].setdefault(int(warp_tb[w]), []).append(warp)
    kernels = []
    for k_index, name in enumerate(kernel_names):
        tbs = tuple(
            TBTrace(tb_id, tuple(warps))
            for tb_id, warps in sorted(per_kernel[k_index].items())
        )
        kernels.append(KernelTrace(name, tbs))
    return Workload(
        name=header["name"],
        abbreviation=header["abbreviation"],
        kernels=tuple(kernels),
        instructions_per_request=header["instructions_per_request"],
        expected_valley=header["expected_valley"],
        description=header.get("description", ""),
        metadata=header.get("metadata", {}),
    )
