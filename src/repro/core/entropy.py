"""Window-based address-bit entropy analysis (paper Section III).

GPU-compute workloads are too concurrent for flip-rate entropy
estimators, so the paper measures, per address bit:

1. the **Bit Value Ratio (BVR)** of every Thread Block — the fraction
   of 1-values the bit takes across the TB's memory requests,
2. the per-window Shannon entropy of the *distribution of BVR values*
   among the ``w`` TBs inside a window sliding over the TBs in issue
   (identifier) order, where ``w`` approximates how many TBs execute
   concurrently (heuristically: the number of SMs), and
3. the **window-based entropy** ``H*`` — the arithmetic mean of the
   window entropies (Eq. 2).

Entropy uses Shannon's function with logarithm base ``v`` (the number
of unique BVR values in the window, Eq. 1), so each window entropy
lies in [0, 1]; a window with a single unique BVR value has entropy 0.
The paper's footnote 1 fixes the convention: BVRs {0, 0, 1} give
probabilities (2/3, 1/3) and entropy 0.92 (i.e. base-2 for v=2).

Applications are analyzed per kernel (TBs of different kernels never
co-execute in the paper's setup); the application profile is the
per-kernel profile average weighted by memory request count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .address_map import AddressMap
from .gf2 import gf2_matvec_batch

__all__ = [
    "EntropyProfile",
    "translate_kernel_inputs",
    "bit_value_ratios",
    "window_entropy",
    "entropy_of_bvr_window",
    "stream_entropy",
    "kernel_entropy_profile",
    "application_entropy_profile",
    "average_entropy_profile",
    "find_entropy_valleys",
    "has_parallel_bit_valley",
]


def translate_kernel_inputs(kernels, matrix):
    """Map every address of every kernel through a GF(2) matrix at once.

    *kernels* has the :meth:`~repro.workloads.base.Workload.entropy_kernel_inputs`
    shape — ``(tb_address_arrays, weight)`` pairs.  The whole trace
    (all TBs of all kernels) is concatenated, translated in a single
    :func:`~repro.core.gf2.gf2_matvec_batch` call, and split back, so a
    mapped entropy profile (paper Fig. 10) costs one numpy product
    instead of one matrix application per Thread Block.  Weights and
    TB boundaries are preserved.
    """
    arrays = []
    shapes = []  # (n_tbs, [lengths...], weight) per kernel
    for tb_arrays, weight in kernels:
        tbs = [np.atleast_1d(np.asarray(a, dtype=np.uint64)) for a in tb_arrays]
        arrays.extend(tbs)
        shapes.append(([a.size for a in tbs], weight))
    if not arrays:
        return [([], weight) for _, weight in shapes]
    flat = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
    mapped = gf2_matvec_batch(matrix, flat)
    out = []
    offset = 0
    for lengths, weight in shapes:
        tbs = []
        for length in lengths:
            tbs.append(mapped[offset:offset + length])
            offset += length
        out.append((tbs, weight))
    return out


def _address_bits(addresses: np.ndarray, width: int) -> np.ndarray:
    """Explode uint addresses into a (n_requests, width) 0/1 matrix."""
    addr = np.asarray(addresses, dtype=np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return ((addr[:, np.newaxis] >> shifts) & np.uint64(1)).astype(np.uint8)


def bit_value_ratios(addresses, width: int) -> np.ndarray:
    """BVR of each address bit across one TB's requests.

    Returns a float array of shape ``(width,)``; entry *i* is the
    fraction of the TB's requests whose address bit *i* is 1.
    """
    addr = np.asarray(addresses, dtype=np.uint64)
    if addr.size == 0:
        raise ValueError("cannot compute BVRs of an empty request list")
    return _address_bits(addr, width).mean(axis=0)


def entropy_of_bvr_window(bvr_values: Sequence[float]) -> float:
    """Entropy of one window of BVR values (Eq. 1 with log base v).

    *bvr_values* are the BVRs of the TBs inside the window.  The
    number of unique values determines the logarithm base, so the
    result is normalized to [0, 1].  One unique value gives 0.
    """
    values = np.asarray(bvr_values, dtype=float)
    if values.size == 0:
        raise ValueError("window must contain at least one BVR value")
    _, counts = np.unique(values, return_counts=True)
    v = counts.size
    if v == 1:
        return 0.0
    p = counts / values.size
    # min() guards the [0, 1] contract against float rounding: the
    # normalized entropy can exceed 1 by an ulp when all probabilities
    # are equal.
    return float(min(1.0, -(p * np.log2(p)).sum() / np.log2(v)))


def window_entropy(bvrs: np.ndarray, window: int) -> np.ndarray:
    """Window-based entropy ``H*`` per address bit (Eq. 2), vectorized.

    Parameters
    ----------
    bvrs:
        Array of shape ``(n_tbs, width)``: row *t* holds TB *t*'s BVRs,
        with TBs ordered by identifier (issue order).
    window:
        Concurrency window size ``w``.  Clamped to ``n_tbs`` when the
        kernel has fewer TBs than the window (a single window then
        covers the whole kernel).

    Returns the per-bit ``H*`` array of shape ``(width,)``.
    """
    bvrs = np.asarray(bvrs, dtype=float)
    if bvrs.ndim != 2:
        raise ValueError(f"bvrs must be 2-D (n_tbs, width), got shape {bvrs.shape}")
    n_tbs, width = bvrs.shape
    if n_tbs == 0:
        raise ValueError("need at least one TB")
    if window < 1:
        raise ValueError(f"window size must be >= 1, got {window}")
    w = min(window, n_tbs)
    n_windows = n_tbs - w + 1

    result = np.empty(width, dtype=float)
    for bit in range(width):
        column = bvrs[:, bit]
        # Quantize to kill float noise between identically-derived BVRs,
        # then code each unique value as an integer.
        codes = np.unique(np.round(column, 12), return_inverse=True)[1]
        v_total = int(codes.max()) + 1
        if v_total == 1:
            result[bit] = 0.0
            continue
        # One-hot cumulative counts -> per-window value histograms.
        one_hot = np.zeros((n_tbs + 1, v_total), dtype=np.int64)
        one_hot[np.arange(1, n_tbs + 1), codes] = 1
        cumulative = one_hot.cumsum(axis=0)
        counts = cumulative[w:] - cumulative[:-w]  # (n_windows, v_total)
        p = counts / w
        with np.errstate(divide="ignore", invalid="ignore"):
            plogp = np.where(counts > 0, p * np.log2(p), 0.0)
        v_in_window = (counts > 0).sum(axis=1)
        h = -plogp.sum(axis=1)
        norm = np.where(v_in_window > 1, np.log2(np.maximum(v_in_window, 2)), 1.0)
        # minimum() guards the normalized [0, 1] contract against float
        # rounding (uniform windows can land an ulp above 1).
        h = np.where(v_in_window > 1, np.minimum(h / norm, 1.0), 0.0)
        result[bit] = h.sum() / n_windows
    return result


def stream_entropy(addresses, width: int) -> np.ndarray:
    """Plain per-bit Shannon entropy of a flat address stream.

    This is the classic (CPU-style) metric used for the Figure 1
    comparison: per bit, entropy of the Bernoulli distribution with
    p = fraction of 1s, in bits (base 2).
    """
    p = bit_value_ratios(addresses, width)
    h = np.zeros(width, dtype=float)
    mask = (p > 0) & (p < 1)
    pm = p[mask]
    h[mask] = -(pm * np.log2(pm) + (1 - pm) * np.log2(1 - pm))
    return h


@dataclass(frozen=True)
class EntropyProfile:
    """A per-bit entropy distribution tied to an address map.

    ``values[i]`` is the entropy of address bit *i*.  Helper queries
    slice the profile by the map's fields, mirroring how the paper
    reads its Figure 5 plots.
    """

    values: np.ndarray
    address_map: AddressMap
    label: str = ""

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.shape != (self.address_map.width,):
            raise ValueError(
                f"profile must have one value per address bit "
                f"({self.address_map.width}), got shape {values.shape}"
            )
        object.__setattr__(self, "values", values)

    def of_bits(self, bits: Iterable[int]) -> np.ndarray:
        return self.values[np.asarray(sorted(bits), dtype=int)]

    def mean_over(self, *field_names: str) -> float:
        """Mean entropy over the named fields' bits."""
        bits = self.address_map.bits_of(*field_names)
        if not bits:
            raise ValueError(f"no bits for fields {field_names}")
        return float(self.of_bits(bits).mean())

    def parallel_bit_entropy(self) -> float:
        """Mean entropy of the channel/bank (parallel-unit) bits."""
        return float(self.of_bits(self.address_map.parallel_bits()).mean())

    def plotted_bits(self) -> Tuple[int, ...]:
        """Bits shown in the paper's plots: everything above the block offset."""
        return self.address_map.non_block_bits()

    def series(self) -> List[Tuple[int, float]]:
        """(bit, entropy) pairs for the plotted bits, MSB first (paper order)."""
        return [(b, float(self.values[b])) for b in sorted(self.plotted_bits(), reverse=True)]

    def __repr__(self) -> str:
        return (
            f"EntropyProfile({self.label!r}, parallel-bit mean="
            f"{self.parallel_bit_entropy():.3f})"
        )


def kernel_entropy_profile(
    tb_addresses: Sequence[np.ndarray],
    address_map: AddressMap,
    window: int,
    label: str = "",
) -> EntropyProfile:
    """Window-based entropy profile of one kernel.

    *tb_addresses* holds one address array per TB, ordered by TB
    identifier.  Empty TBs (no memory requests) are skipped, matching
    the paper's request-driven methodology.
    """
    populated = [np.asarray(a, dtype=np.uint64) for a in tb_addresses if len(a)]
    if not populated:
        raise ValueError("kernel has no memory requests")
    bvrs = np.stack([bit_value_ratios(a, address_map.width) for a in populated])
    return EntropyProfile(window_entropy(bvrs, window), address_map, label)


def application_entropy_profile(
    kernels: Sequence[Tuple[Sequence[np.ndarray], int]],
    address_map: AddressMap,
    window: int,
    label: str = "",
) -> EntropyProfile:
    """Application profile: request-count weighted mean of kernel profiles.

    *kernels* is a sequence of ``(tb_addresses, weight)`` pairs where
    the weight is the kernel's memory request count (paper Section
    III-A).  A weight of ``None``/0 is replaced by the actual request
    count.
    """
    if not kernels:
        raise ValueError("need at least one kernel")
    total = np.zeros(address_map.width, dtype=float)
    weight_sum = 0.0
    for tb_addresses, weight in kernels:
        profile = kernel_entropy_profile(tb_addresses, address_map, window)
        if not weight:
            weight = int(sum(len(a) for a in tb_addresses))
        total += profile.values * weight
        weight_sum += weight
    return EntropyProfile(total / weight_sum, address_map, label)


def average_entropy_profile(profiles: Sequence[EntropyProfile]) -> np.ndarray:
    """Global per-bit average across benchmark profiles (drives RMP)."""
    if not profiles:
        raise ValueError("need at least one profile")
    widths = {p.address_map.width for p in profiles}
    if len(widths) != 1:
        raise ValueError(f"profiles disagree on address width: {sorted(widths)}")
    return np.stack([p.values for p in profiles]).mean(axis=0)


def find_entropy_valleys(
    profile: EntropyProfile,
    threshold: float = 0.35,
    min_width: int = 2,
) -> List[Tuple[int, int]]:
    """Contiguous low-entropy bit ranges among the plotted bits.

    Returns ``(low_bit, high_bit)`` inclusive ranges where every bit's
    entropy is below *threshold* and at least one *higher* plotted bit
    exceeds it (the valley has an upper wall).  CPU-style profiles —
    entropy concentrated in the low bits, decaying monotonically
    towards the MSBs — therefore report none: their only low region
    ends at the MSB and has no wall above it.  A lower wall is not
    required because the lowest transaction-offset bits can be
    structurally constant (128 B coalesced transactions) without that
    changing what the valley means for the channel/bank bits above.
    """
    bits = sorted(profile.plotted_bits())
    values = {b: profile.values[b] for b in bits}
    low = [b for b in bits if values[b] < threshold]
    ranges: List[Tuple[int, int]] = []
    start = None
    previous = None
    for b in bits:
        if b in set(low):
            if start is None:
                start = b
            previous = b
        else:
            if start is not None:
                ranges.append((start, previous))
                start = None
    if start is not None:
        ranges.append((start, previous))

    def has_upper_wall(hi: int) -> bool:
        return any(values[b] >= threshold for b in bits if b > hi)

    return [
        (lo, hi)
        for lo, hi in ranges
        if hi - lo + 1 >= min_width and has_upper_wall(hi)
    ]


def has_parallel_bit_valley(profile: EntropyProfile, threshold: float = 0.35) -> bool:
    """True if an entropy valley overlaps the channel/bank bits.

    This is the condition under which the paper predicts large gains
    from Broad-strategy mapping (the top ten benchmarks of Table II).
    """
    parallel = set(profile.address_map.parallel_bits())
    for lo, hi in find_entropy_valleys(profile, threshold):
        if parallel.intersection(range(lo, hi + 1)):
            return True
    return False
