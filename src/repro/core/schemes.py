"""Address mapping schemes as BIM instances.

This module constructs the six mapping schemes evaluated in the paper
(Section VI), each as a :class:`~repro.core.bim.BinaryInvertibleMatrix`
over a given :class:`~repro.core.address_map.AddressMap`:

* **BASE** — the identity: addresses hit DRAM exactly as laid out by
  the Hynix map (Fig. 4).
* **RMP**  — Remap strategy: a pure bit permutation that moves the
  bits with the highest *average* entropy into the channel/bank
  positions (one 1 per row/column, Fig. 6b).
* **PM**   — Permutation-based Mapping (Zhang et al. [5], Chatterjee
  et al. [4]): each channel/bank bit is XORed with one least
  significant row bit (two 1s per remapped row, Fig. 6c).
* **PAE**  — Page Address Entropy: each channel/bank output bit is the
  XOR of a random subset of the *page address* bits (row + bank +
  channel).  Column bits are untouched, which preserves row-buffer
  locality: all addresses in one DRAM page still land in one page.
* **FAE**  — Full Address Entropy: like PAE but the random subsets
  may also include column bits, harvesting entropy from the complete
  (non-block) address at the cost of spreading page-local accesses.
* **ALL**  — randomizes every non-block output bit from every
  non-block input bit.

Block-offset bits are never used or modified by any scheme, matching
the paper ("these are offsets within a DRAM page and therefore have no
impact on the behavior of the DRAM system").

All randomized builders take an explicit seed so experiments are
reproducible, and retry until the resulting matrix is invertible —
therefore every scheme is a bijection on the address space.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from . import gf2
from ..registry import RegistryError, make_scheme, register_scheme
from .address_map import AddressMap
from .bim import BinaryInvertibleMatrix

__all__ = [
    "MappingScheme",
    "SchemeError",
    "base_scheme",
    "rmp_scheme",
    "pm_scheme",
    "pae_scheme",
    "fae_scheme",
    "all_scheme",
    "broad_scheme",
    "build_scheme",
    "SCHEME_NAMES",
    "PAPER_RMP_SOURCE_BITS",
]

SCHEME_NAMES: Tuple[str, ...] = ("BASE", "PM", "RMP", "PAE", "FAE", "ALL")

# Bits the paper found to have the highest average entropy across its
# benchmark suite and therefore allocated to bank/channel under RMP
# (Section IV-B: "bits 8-11, 15, and 16").
PAPER_RMP_SOURCE_BITS: Tuple[int, ...] = (8, 9, 10, 11, 15, 16)

_MAX_DRAW_TRIES = 512


class SchemeError(ValueError):
    """Raised when a mapping scheme cannot be constructed as requested."""


@dataclass(frozen=True)
class MappingScheme:
    """A named, ready-to-apply address mapping.

    Attributes
    ----------
    name:
        Scheme identifier ("BASE", "PAE", ...).
    bim:
        The underlying binary invertible matrix.
    address_map:
        The physical address map the output address is decoded with.
    strategy:
        BIM family per Fig. 6: "identity", "remap", "pm" or "broad".
    extra_latency_cycles:
        Pipeline cycles added by the mapping hardware (0 for BASE,
        1 for everything else, per the paper's Section V).
    """

    name: str
    bim: BinaryInvertibleMatrix
    address_map: AddressMap
    strategy: str = "broad"
    extra_latency_cycles: int = 1
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bim.width != self.address_map.width:
            raise SchemeError(
                f"BIM width {self.bim.width} does not match address map width "
                f"{self.address_map.width}"
            )

    def map(self, addresses):
        """Apply the scheme to one address or an array of addresses."""
        return self.bim.apply(addresses)

    def map_trace(self, address_arrays):
        """Translate a whole trace (a sequence of address arrays) at once.

        Concatenates every array, pushes the flat trace through one
        batched GF(2) product (:func:`~repro.core.gf2.gf2_matvec_batch`)
        and splits the result back, so translating e.g. all Thread
        Blocks of a kernel costs one numpy call instead of one
        :meth:`map` per TB.  Returns a list of ``uint64`` arrays with
        the input lengths; equivalent to ``[self.map(a) for a in
        address_arrays]`` element for element.
        """
        arrays = [
            np.atleast_1d(np.asarray(a, dtype=np.uint64)) for a in address_arrays
        ]
        if not arrays:
            return []
        lengths = [a.size for a in arrays]
        flat = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        mapped = gf2.gf2_matvec_batch(self.bim.matrix, flat)
        return np.split(mapped, np.cumsum(lengths)[:-1])

    def unmap(self, addresses):
        """Invert the scheme (recover the original addresses)."""
        return self.bim.apply_inverse(addresses)

    def decode(self, address: int) -> Dict[str, int]:
        """Map an input address and decode the result into DRAM coordinates."""
        return self.address_map.decode(int(self.map(int(address))))

    def __repr__(self) -> str:
        return (
            f"MappingScheme({self.name!r}, strategy={self.strategy!r}, "
            f"width={self.bim.width})"
        )


# ----------------------------------------------------------------------
# Non-random schemes
# ----------------------------------------------------------------------
def base_scheme(address_map: AddressMap) -> MappingScheme:
    """The baseline (identity) mapping — addresses pass through unchanged."""
    return MappingScheme(
        name="BASE",
        bim=BinaryInvertibleMatrix.identity(address_map.width),
        address_map=address_map,
        strategy="identity",
        extra_latency_cycles=0,
    )


def rmp_scheme(
    address_map: AddressMap,
    entropy_by_bit: Optional[Sequence[float]] = None,
    source_bits: Optional[Sequence[int]] = None,
) -> MappingScheme:
    """Remap strategy: permute high-average-entropy bits into bank/channel.

    The source bits may be given directly (*source_bits*), derived from
    a per-bit average entropy profile (*entropy_by_bit*, highest
    non-block bits win), or defaulted to the paper's published choice
    (bits 8-11, 15 and 16 for the Hynix map).
    """
    targets = list(address_map.parallel_bits())
    if source_bits is not None:
        sources = list(source_bits)
    elif entropy_by_bit is not None:
        profile = np.asarray(entropy_by_bit, dtype=float)
        if profile.shape != (address_map.width,):
            raise SchemeError(
                f"entropy profile must have one entry per address bit "
                f"({address_map.width}), got shape {profile.shape}"
            )
        candidates = sorted(
            address_map.non_block_bits(), key=lambda b: (-profile[b], b)
        )
        sources = sorted(candidates[: len(targets)])
    else:
        sources = [b for b in PAPER_RMP_SOURCE_BITS if b < address_map.width]
        if len(sources) != len(targets):
            # The paper's bit list fits the Hynix map; for other maps
            # (e.g. 3D-stacked with 10 parallel bits) default to the
            # lowest non-block bits, which is where GPU entropy tends
            # to concentrate on average.
            sources = list(address_map.non_block_bits()[: len(targets)])
    if len(sources) != len(targets):
        raise SchemeError(
            f"RMP needs exactly {len(targets)} source bits, got {len(sources)}"
        )
    if len(set(sources)) != len(sources):
        raise SchemeError(f"RMP source bits repeat: {sources}")
    block = set(address_map.block_bits())
    if block.intersection(sources):
        raise SchemeError("RMP source bits may not include block-offset bits")

    # Build the permutation as a sequence of transpositions: for each
    # target position, swap in the desired source bit.  source_of[i]
    # is the input bit that output bit i takes its value from.
    source_of = list(range(address_map.width))
    for target, source in zip(targets, sources):
        holder = source_of.index(source)
        source_of[target], source_of[holder] = source_of[holder], source_of[target]
    return MappingScheme(
        name="RMP",
        bim=BinaryInvertibleMatrix.from_permutation(source_of),
        address_map=address_map,
        strategy="remap",
        metadata={"source_bits": tuple(sources)},
    )


def pm_scheme(address_map: AddressMap) -> MappingScheme:
    """Permutation-based Mapping: XOR each bank/channel bit with one row bit.

    Follows the prior work the paper compares against ([4], [5]): the
    i-th parallel-unit bit is XORed with the i-th least significant
    row bit.  Row bits themselves are unchanged, so the matrix is
    invertible by construction.
    """
    targets = list(address_map.parallel_bits())
    row_bits = sorted(address_map.field("row").bits)
    if len(row_bits) < len(targets):
        raise SchemeError(
            f"PM needs {len(targets)} row bits but the map only has {len(row_bits)}"
        )
    matrix = gf2.identity(address_map.width)
    for target, row_bit in zip(targets, row_bits):
        matrix[target, row_bit] ^= 1
    return MappingScheme(
        name="PM",
        bim=BinaryInvertibleMatrix(matrix),
        address_map=address_map,
        strategy="pm",
        metadata={"row_bits": tuple(row_bits[: len(targets)])},
    )


# ----------------------------------------------------------------------
# Broad-strategy schemes (random BIMs)
# ----------------------------------------------------------------------
def broad_scheme(
    name: str,
    address_map: AddressMap,
    input_bits: Sequence[int],
    output_bits: Sequence[int],
    seed: int,
    density: float = 0.5,
) -> MappingScheme:
    """Generic Broad-strategy builder.

    Each bit in *output_bits* is regenerated as the XOR of a random
    subset (expected fraction *density*) of *input_bits*; all other
    bits pass through.  Drawing retries until the full matrix is
    invertible, so the result is always a bijection.
    """
    width = address_map.width
    inputs = sorted(set(input_bits))
    outputs = sorted(set(output_bits))
    block = set(address_map.block_bits())
    if block.intersection(inputs) or block.intersection(outputs):
        raise SchemeError("broad schemes must not touch block-offset bits")
    if not inputs or not outputs:
        raise SchemeError("broad schemes need non-empty input and output bit sets")
    if not set(outputs) <= set(inputs):
        # Outputs outside the input set could never reconstruct their
        # own value, making the matrix trivially singular.
        raise SchemeError("output bits must be a subset of the harvested input bits")

    rng = np.random.default_rng(seed)
    input_arr = np.asarray(inputs)
    for _ in range(_MAX_DRAW_TRIES):
        matrix = gf2.identity(width)
        for out_bit in outputs:
            row = (rng.random(input_arr.size) < density).astype(np.uint8)
            matrix[out_bit, :] = 0
            matrix[out_bit, input_arr] = row
        if gf2.is_invertible(matrix):
            return MappingScheme(
                name=name,
                bim=BinaryInvertibleMatrix(matrix),
                address_map=address_map,
                strategy="broad",
                metadata={
                    "input_bits": tuple(inputs),
                    "output_bits": tuple(outputs),
                    "seed": seed,
                },
            )
    raise SchemeError(
        f"could not draw an invertible BIM for {name} in {_MAX_DRAW_TRIES} tries"
    )


def pae_scheme(address_map: AddressMap, seed: int = 0) -> MappingScheme:
    """Page Address Entropy: harvest page-address bits into bank/channel.

    Inputs are the row + bank + channel (page address) bits; outputs
    are the bank + channel bits.  Because column bits are neither read
    nor written, all blocks of one DRAM page stay together in the
    mapped page — the property that gives PAE its power efficiency.
    """
    return broad_scheme(
        "PAE",
        address_map,
        input_bits=address_map.page_bits(),
        output_bits=address_map.parallel_bits(),
        seed=seed,
    )


def fae_scheme(address_map: AddressMap, seed: int = 0) -> MappingScheme:
    """Full Address Entropy: harvest all non-block bits into bank/channel."""
    return broad_scheme(
        "FAE",
        address_map,
        input_bits=address_map.non_block_bits(),
        output_bits=address_map.parallel_bits(),
        seed=seed,
    )


def all_scheme(address_map: AddressMap, seed: int = 0) -> MappingScheme:
    """ALL: randomize every non-block bit from every non-block bit.

    The non-block/non-block submatrix is drawn directly as a uniform
    random invertible matrix and embedded into the identity.
    """
    width = address_map.width
    non_block = list(address_map.non_block_bits())
    rng = np.random.default_rng(seed)
    sub = gf2.random_invertible(len(non_block), rng)
    matrix = gf2.identity(width)
    idx = np.asarray(non_block)
    matrix[np.ix_(idx, idx)] = 0
    matrix[np.ix_(idx, idx)] = sub
    return MappingScheme(
        name="ALL",
        bim=BinaryInvertibleMatrix(matrix),
        address_map=address_map,
        strategy="broad",
        metadata={"input_bits": tuple(non_block), "output_bits": tuple(non_block), "seed": seed},
    )


# ----------------------------------------------------------------------
# Registry migration: the six paper schemes are just the pre-registered
# entries of repro.registry.  User schemes register the same way.
# ----------------------------------------------------------------------
@register_scheme("BASE", origin="builtin")
def _registered_base(address_map: AddressMap) -> MappingScheme:
    """Identity mapping (the Hynix baseline)."""
    return base_scheme(address_map)


@register_scheme("PM", origin="builtin")
def _registered_pm(address_map: AddressMap) -> MappingScheme:
    """Permutation-based Mapping (Zhang et al. / Chatterjee et al.)."""
    return pm_scheme(address_map)


@register_scheme("RMP", origin="builtin", needs_entropy_profile=True)
def _registered_rmp(
    address_map: AddressMap,
    entropy_by_bit: Optional[Sequence[float]] = None,
    source_bits: Optional[Sequence[int]] = None,
) -> MappingScheme:
    """Remap strategy (highest-average-entropy bits into bank/channel)."""
    return rmp_scheme(
        address_map, entropy_by_bit=entropy_by_bit, source_bits=source_bits
    )


@register_scheme("PAE", origin="builtin")
def _registered_pae(address_map: AddressMap, seed: int = 0) -> MappingScheme:
    """Page Address Entropy (the paper's contribution)."""
    return pae_scheme(address_map, seed=seed)


@register_scheme("FAE", origin="builtin")
def _registered_fae(address_map: AddressMap, seed: int = 0) -> MappingScheme:
    """Full Address Entropy."""
    return fae_scheme(address_map, seed=seed)


@register_scheme("ALL", origin="builtin")
def _registered_all(address_map: AddressMap, seed: int = 0) -> MappingScheme:
    """Randomize every non-block bit from every non-block bit."""
    return all_scheme(address_map, seed=seed)


_BUILD_SCHEME_WARNED = False


def build_scheme(
    name: str,
    address_map: AddressMap,
    seed: int = 0,
    entropy_by_bit: Optional[Sequence[float]] = None,
) -> MappingScheme:
    """Build a registered scheme by name.

    .. deprecated::
        Use :func:`repro.registry.make_scheme` (any registered scheme)
        or :meth:`repro.specs.SchemeSpec.build` (serializable specs).
        This shim keeps old call sites working and warns once.

    *seed* selects the BIM instance for the randomized schemes (the
    paper's Figure 19 evaluates three instances per scheme).
    *entropy_by_bit* feeds RMP's source-bit selection when given.
    """
    global _BUILD_SCHEME_WARNED
    if not _BUILD_SCHEME_WARNED:
        _BUILD_SCHEME_WARNED = True
        warnings.warn(
            "build_scheme() is deprecated; use repro.registry.make_scheme() "
            "or repro.specs.SchemeSpec.build() instead",
            DeprecationWarning,
            stacklevel=2,
        )
    try:
        return make_scheme(
            name, address_map, seed=seed, entropy_by_bit=entropy_by_bit
        )
    except RegistryError as error:
        raise SchemeError(str(error)) from None
