"""Core contribution of the paper: BIM-based address mapping + entropy analysis."""

from .address_map import (
    AddressField,
    AddressMap,
    AddressMapError,
    hynix_gddr5_map,
    stacked_memory_map,
    toy_map,
)
from .bim import BIM, BinaryInvertibleMatrix
from .entropy import (
    EntropyProfile,
    application_entropy_profile,
    average_entropy_profile,
    bit_value_ratios,
    entropy_of_bvr_window,
    find_entropy_valleys,
    has_parallel_bit_valley,
    kernel_entropy_profile,
    stream_entropy,
    window_entropy,
)
from .gf2 import GF2Error
from .mapper import AddressMapper, HardwareCost, decode_fields
from .schemes import (
    SCHEME_NAMES,
    MappingScheme,
    SchemeError,
    all_scheme,
    base_scheme,
    broad_scheme,
    build_scheme,
    fae_scheme,
    pae_scheme,
    pm_scheme,
    rmp_scheme,
)

__all__ = [
    "AddressField",
    "AddressMap",
    "AddressMapError",
    "AddressMapper",
    "BIM",
    "BinaryInvertibleMatrix",
    "EntropyProfile",
    "GF2Error",
    "HardwareCost",
    "MappingScheme",
    "SCHEME_NAMES",
    "SchemeError",
    "all_scheme",
    "application_entropy_profile",
    "average_entropy_profile",
    "base_scheme",
    "bit_value_ratios",
    "broad_scheme",
    "build_scheme",
    "decode_fields",
    "entropy_of_bvr_window",
    "fae_scheme",
    "find_entropy_valleys",
    "has_parallel_bit_valley",
    "hynix_gddr5_map",
    "kernel_entropy_profile",
    "pae_scheme",
    "pm_scheme",
    "rmp_scheme",
    "stacked_memory_map",
    "stream_entropy",
    "toy_map",
    "window_entropy",
]
