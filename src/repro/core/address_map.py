"""Physical address maps: named bit-fields of a DRAM address.

An :class:`AddressMap` names every bit of a physical address with the
DRAM resource it selects (row, column, bank, channel, block offset,
and for 3D-stacked parts also vault and stack).  It provides
encode/decode between flat addresses and per-field coordinates, and
the field-to-bit queries the mapping schemes are built from.

The module ships the two maps used in the paper:

* :func:`hynix_gddr5_map` — the 30-bit baseline map of Figure 4
  (1 GB Hynix GDDR5: 4 channels, 16 banks, 4K rows, 64 columns,
  64 B blocks).  Field placement follows the paper's text: channel
  bits are 8-9, bank bits 10-13 ("entropy valley for channel bits 8-9
  and bank bit 10", Section IV-B).
* :func:`stacked_memory_map` — the 3D-stacked configuration of the
  Figure 18 sensitivity study (4 stacks x 16 vaults x 16 banks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "AddressField",
    "AddressMap",
    "AddressMapError",
    "hynix_gddr5_map",
    "stacked_memory_map",
    "toy_map",
    "PARALLEL_FIELDS",
    "PAGE_FIELDS",
]

# Fields whose selection determines which parallel DRAM unit serves a
# request.  These are the bits a good mapping must keep high-entropy.
PARALLEL_FIELDS: Tuple[str, ...] = ("channel", "bank", "vault", "stack")

# Fields that make up the DRAM *page address*: everything except the
# column and block offsets.  PAE harvests entropy from exactly these.
PAGE_FIELDS: Tuple[str, ...] = ("row", "bank", "channel", "vault", "stack")


class AddressMapError(ValueError):
    """Raised for malformed address maps or out-of-range coordinates."""


@dataclass(frozen=True)
class AddressField:
    """One named field of an address map.

    ``bits`` lists the physical bit positions the field occupies,
    ordered least-significant first: ``bits[0]`` carries bit 0 of the
    field's value.
    """

    name: str
    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise AddressMapError("field name must be non-empty")
        if len(set(self.bits)) != len(self.bits):
            raise AddressMapError(f"field {self.name!r} repeats bit positions: {self.bits}")
        if any(b < 0 for b in self.bits):
            raise AddressMapError(f"field {self.name!r} has negative bit positions: {self.bits}")

    @property
    def width(self) -> int:
        """Field width in bits."""
        return len(self.bits)

    @property
    def size(self) -> int:
        """Number of distinct values the field can take."""
        return 1 << len(self.bits)

    def extract(self, address: int) -> int:
        """Read this field's value out of a flat address."""
        value = 0
        for i, bit in enumerate(self.bits):
            value |= ((address >> bit) & 1) << i
        return value

    def insert(self, address: int, value: int) -> int:
        """Return *address* with this field overwritten by *value*."""
        if not 0 <= value < self.size:
            raise AddressMapError(
                f"value {value} out of range for {self.width}-bit field {self.name!r}"
            )
        for i, bit in enumerate(self.bits):
            address &= ~(1 << bit)
            address |= ((value >> i) & 1) << bit
        return address


class AddressMap:
    """A complete partition of an address into named fields.

    Every bit of the *width*-bit address must belong to exactly one
    field; gaps and overlaps are construction errors.
    """

    def __init__(self, width: int, fields: Sequence[AddressField]) -> None:
        if width <= 0:
            raise AddressMapError(f"address width must be positive, got {width}")
        self._width = width
        self._fields: Dict[str, AddressField] = {}
        claimed: Dict[int, str] = {}
        for f in fields:
            if f.name in self._fields:
                raise AddressMapError(f"duplicate field {f.name!r}")
            for bit in f.bits:
                if bit >= width:
                    raise AddressMapError(
                        f"field {f.name!r} uses bit {bit} beyond width {width}"
                    )
                if bit in claimed:
                    raise AddressMapError(
                        f"bit {bit} claimed by both {claimed[bit]!r} and {f.name!r}"
                    )
                claimed[bit] = f.name
            self._fields[f.name] = f
        missing = [b for b in range(width) if b not in claimed]
        if missing:
            raise AddressMapError(f"bits not covered by any field: {missing}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Total address width in bits."""
        return self._width

    @property
    def capacity(self) -> int:
        """Total bytes addressed (2**width)."""
        return 1 << self._width

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def field(self, name: str) -> AddressField:
        """Look up a field by name."""
        try:
            return self._fields[name]
        except KeyError:
            raise AddressMapError(f"no field named {name!r}; have {self.field_names}") from None

    def bits_of(self, *names: str) -> Tuple[int, ...]:
        """All bit positions of the named fields (sorted ascending).

        Unknown names are ignored so callers can pass the generic
        PAGE_FIELDS / PARALLEL_FIELDS tuples against any map.
        """
        bits: List[int] = []
        for name in names:
            if name in self._fields:
                bits.extend(self._fields[name].bits)
        return tuple(sorted(bits))

    def parallel_bits(self) -> Tuple[int, ...]:
        """Bits selecting parallel DRAM units (channel/bank/vault/stack)."""
        return self.bits_of(*PARALLEL_FIELDS)

    def page_bits(self) -> Tuple[int, ...]:
        """Bits of the DRAM page address (row + parallel-unit bits)."""
        return self.bits_of(*PAGE_FIELDS)

    def block_bits(self) -> Tuple[int, ...]:
        """Bits that are offsets within a DRAM block (never remapped)."""
        return self.bits_of("block")

    def non_block_bits(self) -> Tuple[int, ...]:
        """All bits except the block offset."""
        block = set(self.block_bits())
        return tuple(b for b in range(self._width) if b not in block)

    def sizes(self) -> Dict[str, int]:
        """Mapping of field name to number of distinct values."""
        return {name: f.size for name, f in self._fields.items()}

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def decode(self, address: int) -> Dict[str, int]:
        """Split a flat address into per-field coordinates."""
        if not 0 <= address < self.capacity:
            raise AddressMapError(
                f"address 0x{address:x} out of range for {self._width}-bit map"
            )
        return {name: f.extract(address) for name, f in self._fields.items()}

    def encode(self, **coordinates: int) -> int:
        """Build a flat address from per-field coordinates.

        Unspecified fields default to 0.  Unknown field names raise.
        """
        address = 0
        for name, value in coordinates.items():
            address = self.field(name).insert(address, value)
        return address

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{f.width}b]" for name, f in sorted(
                self._fields.items(), key=lambda kv: -max(kv[1].bits)
            )
        )
        return f"AddressMap(width={self._width}, {parts})"


def _bit_range(low: int, high: int) -> Tuple[int, ...]:
    """Bits low..high inclusive, LSB first."""
    return tuple(range(low, high + 1))


def hynix_gddr5_map() -> AddressMap:
    """The paper's 30-bit baseline Hynix GDDR5 address map (Fig. 4).

    Layout (MSB to LSB)::

        row[29:18] | col_hi[17:14] | bank[13:10] | channel[9:8] | col_lo[7:6] | block[5:0]

    which yields 4K rows/bank, 16 banks/channel, 4 channels,
    64 columns/row (split 4+2) and 64 B blocks — 1 GB total.  The
    split column field is represented as a single "col" field whose
    low 2 bits sit at positions 7:6 and high 4 bits at 17:14.
    """
    return AddressMap(
        30,
        [
            AddressField("block", _bit_range(0, 5)),
            AddressField("col", _bit_range(6, 7) + _bit_range(14, 17)),
            AddressField("channel", _bit_range(8, 9)),
            AddressField("bank", _bit_range(10, 13)),
            AddressField("row", _bit_range(18, 29)),
        ],
    )


def stacked_memory_map() -> AddressMap:
    """Address map for the 3D-stacked configuration of Figure 18.

    4 stacks x 16 vaults/stack x 16 banks/vault, keeping 4K rows,
    64 columns and 64 B blocks per bank (4 GB total, 32-bit address).
    The mapping schemes randomize the 2 stack + 4 vault + 4 bank bits,
    matching the paper ("randomize 2 channel bits, 4 vault bits and
    4 bank bits"; the stack plays the channel role).
    """
    return AddressMap(
        32,
        [
            AddressField("block", _bit_range(0, 5)),
            AddressField("col", _bit_range(6, 7) + _bit_range(16, 19)),
            AddressField("stack", _bit_range(8, 9)),
            AddressField("vault", _bit_range(10, 13)),
            AddressField("bank", _bit_range(14, 15)  # low 2 bank bits
                          + _bit_range(20, 21)),     # high 2 bank bits
            AddressField("row", _bit_range(22, 31)),
        ],
    )


def toy_map() -> AddressMap:
    """The 5-bit example map of the paper's Figure 6 (plus a block bit).

    ``row[5:3] | channel[2] | bank[1] | block[0]`` — handy in tests and
    in the motivating-example code.
    """
    return AddressMap(
        6,
        [
            AddressField("block", (0,)),
            AddressField("bank", (1,)),
            AddressField("channel", (2,)),
            AddressField("row", (3, 4, 5)),
        ],
    )
