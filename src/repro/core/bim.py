"""The Binary Invertible Matrix (BIM) abstraction.

The paper observes that every address mapping built from AND and XOR
operations can be written as ``a_out = M . a_in`` over GF(2) where
``M`` is a *binary invertible matrix*.  Invertibility guarantees the
mapping is a bijection on the address space, i.e. no two input
addresses collide.

Bit convention
--------------
Addresses are plain Python/numpy integers.  Bit *i* of the address is
component *i* of the GF(2) vector, so **row i of the matrix produces
output bit i** and **column j consumes input bit j**.  This matches
the paper's Figure 6 up to the (irrelevant) ordering of the printed
rows.

Applying a BIM to millions of addresses must be cheap, so
:class:`BinaryInvertibleMatrix` precompiles each row into an integer
bit-mask and evaluates ``popcount(addr & mask) & 1`` per output bit,
fully vectorized over numpy arrays.  Rows that merely copy their own
input bit are folded into a single identity mask.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from . import gf2
from .gf2 import GF2Error

__all__ = ["BinaryInvertibleMatrix", "BIM"]

AddressLike = Union[int, np.ndarray, Iterable[int]]


def _parity_u64(values: np.ndarray) -> np.ndarray:
    """Bitwise parity of each uint64 element (1 if an odd number of set bits)."""
    v = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        v ^= v >> np.uint64(shift)
    return v & np.uint64(1)


class BinaryInvertibleMatrix:
    """An n-bit address mapping ``a_out = M . a_in`` over GF(2).

    Parameters
    ----------
    matrix:
        A square 0/1 matrix.  Must be invertible over GF(2); a
        :class:`~repro.core.gf2.GF2Error` is raised otherwise, so an
        invalid mapping can never be constructed.

    Examples
    --------
    >>> import numpy as np
    >>> bim = BinaryInvertibleMatrix(np.eye(4))
    >>> bim.apply(0b1010)
    10
    """

    def __init__(self, matrix) -> None:
        m = gf2.as_gf2(matrix)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise GF2Error(f"BIM must be square, got shape {m.shape}")
        if not gf2.is_invertible(m):
            raise GF2Error("matrix is not invertible over GF(2): mapping would collide")
        self._matrix = m
        self._matrix.setflags(write=False)
        self._width = m.shape[0]
        if self._width > 63:
            raise GF2Error(f"address widths above 63 bits are unsupported, got {self._width}")
        self._compile()

    def _compile(self) -> None:
        """Precompute per-row input masks and fold identity rows together."""
        bit_weights = np.uint64(1) << np.arange(self._width, dtype=np.uint64)
        row_masks = (self._matrix.astype(np.uint64) * bit_weights[np.newaxis, :]).sum(axis=1)
        identity_rows = row_masks == bit_weights
        self._identity_mask = np.uint64(np.bitwise_or.reduce(bit_weights[identity_rows], initial=np.uint64(0)))
        self._xor_rows = [
            (np.uint64(1) << np.uint64(i), np.uint64(row_masks[i]))
            for i in range(self._width)
            if not identity_rows[i]
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Address width in bits."""
        return self._width

    @property
    def matrix(self) -> np.ndarray:
        """The underlying (read-only) GF(2) matrix."""
        return self._matrix

    def is_identity(self) -> bool:
        """True if this BIM is the identity mapping."""
        return bool((self._matrix == gf2.identity(self._width)).all())

    def is_permutation(self) -> bool:
        """True if the BIM only rearranges bits (Remap strategy)."""
        return bool((self._matrix.sum(axis=0) == 1).all() and (self._matrix.sum(axis=1) == 1).all())

    def row_fanin(self, bit: int) -> int:
        """Number of input bits XORed to produce output *bit*."""
        return int(self._matrix[bit].sum())

    def xor_gate_count(self) -> int:
        """Two-input XOR gates needed by a direct tree implementation (Fig. 7)."""
        fanins = self._matrix.sum(axis=1).astype(int)
        return int(np.maximum(fanins - 1, 0).sum())

    def xor_tree_depth(self) -> int:
        """Logic depth in two-input XOR gate levels of the widest row."""
        max_fanin = int(self._matrix.sum(axis=1).max())
        return max(0, int(np.ceil(np.log2(max_fanin)))) if max_fanin > 1 else 0

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def inverse(self) -> "BinaryInvertibleMatrix":
        """The inverse mapping (always exists by construction)."""
        return BinaryInvertibleMatrix(gf2.gf2_inverse(self._matrix))

    def compose(self, other: "BinaryInvertibleMatrix") -> "BinaryInvertibleMatrix":
        """The mapping equivalent to applying *other* first, then *self*."""
        if other.width != self._width:
            raise GF2Error(f"cannot compose widths {self._width} and {other.width}")
        return BinaryInvertibleMatrix(gf2.gf2_matmul(self._matrix, other.matrix))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryInvertibleMatrix):
            return NotImplemented
        return self._width == other.width and bool((self._matrix == other.matrix).all())

    def __hash__(self) -> int:
        return hash((self._width, self._matrix.tobytes()))

    def __repr__(self) -> str:
        kind = "identity" if self.is_identity() else ("permutation" if self.is_permutation() else "general")
        return f"BinaryInvertibleMatrix(width={self._width}, kind={kind})"

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, addresses: AddressLike):
        """Map one address or an array of addresses.

        Returns an ``int`` for scalar input, else a ``numpy`` uint64
        array of the same length.  Raises :class:`GF2Error` for
        addresses that do not fit in :attr:`width` bits.
        """
        scalar = np.isscalar(addresses) or isinstance(addresses, (int, np.integer))
        addr = np.atleast_1d(np.asarray(addresses, dtype=np.uint64))
        limit = np.uint64(1) << np.uint64(self._width)
        if addr.size and int(addr.max()) >= int(limit):
            raise GF2Error(
                f"address 0x{int(addr.max()):x} does not fit in {self._width} bits"
            )
        out = addr & self._identity_mask
        for out_bit, mask in self._xor_rows:
            out |= _parity_u64(addr & mask) * out_bit
        if scalar:
            return int(out[0])
        return out

    def apply_inverse(self, addresses: AddressLike):
        """Map addresses through the inverse matrix (undo :meth:`apply`)."""
        return self.inverse().apply(addresses)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, width: int) -> "BinaryInvertibleMatrix":
        """The identity mapping on *width*-bit addresses."""
        return cls(gf2.identity(width))

    @classmethod
    def from_permutation(cls, permutation) -> "BinaryInvertibleMatrix":
        """Mapping where output bit i takes input bit ``permutation[i]``."""
        return cls(gf2.permutation_matrix(permutation))

    @classmethod
    def random(cls, width: int, rng: np.random.Generator) -> "BinaryInvertibleMatrix":
        """A uniformly random invertible mapping (mostly useful for tests)."""
        return cls(gf2.random_invertible(width, rng))


BIM = BinaryInvertibleMatrix
