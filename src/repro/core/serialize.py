"""Serialization of BIMs and mapping schemes.

A deployed mapping scheme is burned into hardware as a fixed matrix,
so a reproducible, human-diffable on-disk representation matters: it
is what an RTL generator or a simulator configuration would consume.

Format: JSON with the matrix packed as one hex string per row
(row i = output bit i; bit j of the row value = input bit j), e.g.::

    {
      "type": "mapping_scheme",
      "name": "PAE",
      "strategy": "broad",
      "width": 30,
      "rows": ["0x1", "0x2", ...],
      "extra_latency_cycles": 1,
      "metadata": {...}
    }

Round-trips are exact (the matrix is bit-identical), and loading
re-validates invertibility through the normal BIM constructor, so a
corrupted file can never produce a colliding mapping.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

import numpy as np

from .address_map import AddressMap
from .bim import BinaryInvertibleMatrix
from .schemes import MappingScheme

__all__ = [
    "bim_to_dict",
    "bim_from_dict",
    "scheme_to_dict",
    "scheme_from_dict",
    "dump_scheme",
    "load_scheme",
    "canonical_json",
    "stable_hash",
    "pack_rows",
    "unpack_rows",
]

_FORMAT_BIM = "bim"
_FORMAT_SCHEME = "mapping_scheme"


def canonical_json(data) -> str:
    """Deterministic JSON encoding of *data*.

    Keys are sorted, separators fixed and non-ASCII escaped, so two
    equal values always produce byte-identical text — across processes,
    platforms and Python versions.  This is the encoding the on-disk
    result cache keys and records are built from.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def stable_hash(data) -> str:
    """Content hash of a JSON-serializable value, as a hex string.

    SHA-256 over :func:`canonical_json`; stable across interpreter
    invocations (unlike the builtin, randomized ``hash``) and therefore
    safe to use as an on-disk cache key.
    """
    return hashlib.sha256(canonical_json(data).encode("ascii")).hexdigest()


def pack_rows(matrix: np.ndarray) -> list:
    """Pack a GF(2) matrix as one hex string per row (row i = output i).

    The row format shared by scheme files and
    :class:`~repro.specs.SchemeSpec` literal-BIM payloads.
    """
    weights = np.uint64(1) << np.arange(matrix.shape[1], dtype=np.uint64)
    return [hex(int((row.astype(np.uint64) * weights).sum())) for row in matrix]


def unpack_rows(rows, width: int) -> np.ndarray:
    """Inverse of :func:`pack_rows` (validating the declared width)."""
    matrix = np.zeros((len(rows), width), dtype=np.uint8)
    for i, text in enumerate(rows):
        value = int(text, 16)
        if value >> width:
            raise ValueError(f"row {i} uses bits beyond width {width}: {text}")
        for j in range(width):
            matrix[i, j] = (value >> j) & 1
    return matrix


def bim_to_dict(bim: BinaryInvertibleMatrix) -> Dict:
    """Portable dict representation of a BIM."""
    return {
        "type": _FORMAT_BIM,
        "width": bim.width,
        "rows": pack_rows(bim.matrix),
    }


def bim_from_dict(data: Dict) -> BinaryInvertibleMatrix:
    """Rebuild (and re-validate) a BIM from :func:`bim_to_dict` output."""
    if data.get("type") != _FORMAT_BIM:
        raise ValueError(f"not a serialized BIM: type={data.get('type')!r}")
    width = int(data["width"])
    rows = data["rows"]
    if len(rows) != width:
        raise ValueError(f"expected {width} rows, got {len(rows)}")
    return BinaryInvertibleMatrix(unpack_rows(rows, width))


def scheme_to_dict(scheme: MappingScheme) -> Dict:
    """Portable dict representation of a full mapping scheme."""
    metadata = {
        key: (list(value) if isinstance(value, tuple) else value)
        for key, value in scheme.metadata.items()
    }
    return {
        "type": _FORMAT_SCHEME,
        "name": scheme.name,
        "strategy": scheme.strategy,
        "width": scheme.bim.width,
        "rows": pack_rows(scheme.bim.matrix),
        "extra_latency_cycles": scheme.extra_latency_cycles,
        "metadata": metadata,
    }


def scheme_from_dict(data: Dict, address_map: AddressMap) -> MappingScheme:
    """Rebuild a scheme against *address_map* (widths must agree)."""
    if data.get("type") != _FORMAT_SCHEME:
        raise ValueError(f"not a serialized scheme: type={data.get('type')!r}")
    width = int(data["width"])
    if width != address_map.width:
        raise ValueError(
            f"serialized width {width} does not match address map width "
            f"{address_map.width}"
        )
    bim = BinaryInvertibleMatrix(unpack_rows(data["rows"], width))
    return MappingScheme(
        name=str(data["name"]),
        bim=bim,
        address_map=address_map,
        strategy=str(data.get("strategy", "broad")),
        extra_latency_cycles=int(data.get("extra_latency_cycles", 1)),
        metadata=dict(data.get("metadata", {})),
    )


def dump_scheme(scheme: MappingScheme, path) -> None:
    """Write a scheme to a JSON file."""
    with open(path, "w") as handle:
        json.dump(scheme_to_dict(scheme), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_scheme(path, address_map: AddressMap) -> MappingScheme:
    """Read a scheme from a JSON file (re-validating invertibility)."""
    with open(path) as handle:
        return scheme_from_dict(json.load(handle), address_map)
