"""Linear algebra over GF(2).

This module provides the small set of GF(2) (binary field) matrix
operations that the Binary Invertible Matrix (BIM) abstraction of the
paper rests on: matrix-vector and matrix-matrix products, rank,
inversion, and the generation of random invertible matrices.

Matrices are dense ``numpy`` arrays of dtype ``uint8`` containing only
0s and 1s.  Addition is XOR and multiplication is AND, so a product is
an ordinary integer product reduced modulo 2.

All functions treat their inputs as immutable and return new arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GF2Error",
    "as_gf2",
    "identity",
    "is_gf2",
    "gf2_matmul",
    "gf2_matvec",
    "gf2_matvec_batch",
    "gf2_rank",
    "gf2_inverse",
    "gf2_solve",
    "is_invertible",
    "random_invertible",
    "random_matrix",
    "permutation_matrix",
]


class GF2Error(ValueError):
    """Raised for invalid GF(2) inputs (non-binary entries, singular matrices)."""


def as_gf2(matrix) -> np.ndarray:
    """Validate and coerce *matrix* into a GF(2) ``uint8`` array.

    Accepts anything ``np.asarray`` accepts.  Raises :class:`GF2Error`
    if any entry is not 0 or 1.
    """
    arr = np.asarray(matrix)
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise GF2Error("GF(2) arrays may only contain 0s and 1s")
    return arr.astype(np.uint8)


def is_gf2(matrix) -> bool:
    """Return True if *matrix* contains only 0s and 1s."""
    arr = np.asarray(matrix)
    return bool(np.isin(arr, (0, 1)).all())


def identity(n: int) -> np.ndarray:
    """The n-by-n identity matrix over GF(2)."""
    if n < 0:
        raise GF2Error(f"matrix dimension must be non-negative, got {n}")
    return np.eye(n, dtype=np.uint8)


def gf2_matmul(a, b) -> np.ndarray:
    """Matrix product ``a @ b`` over GF(2)."""
    a = as_gf2(a)
    b = as_gf2(b)
    if a.shape[-1] != b.shape[0]:
        raise GF2Error(f"incompatible shapes for GF(2) matmul: {a.shape} @ {b.shape}")
    return (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)


def gf2_matvec(matrix, vector) -> np.ndarray:
    """Matrix-vector product over GF(2).

    *vector* may also be a 2-D array of shape ``(n, k)`` holding k
    column vectors; the result then has shape ``(m, k)``.
    """
    m = as_gf2(matrix)
    v = as_gf2(vector)
    if v.ndim == 1:
        if m.shape[1] != v.shape[0]:
            raise GF2Error(
                f"incompatible shapes for GF(2) matvec: {m.shape} @ {v.shape}"
            )
        return (m.astype(np.int64) @ v.astype(np.int64) % 2).astype(np.uint8)
    return gf2_matmul(m, v)


def gf2_matvec_batch(matrix, addresses) -> np.ndarray:
    """Apply one GF(2) matrix to a whole array of integer addresses.

    *matrix* has shape ``(m, n)``; *addresses* is a 1-D array of
    unsigned integers, each interpreted as an n-component GF(2) vector
    (bit *j* of the address = component *j*).  The result is a
    ``uint64`` array of the mapped addresses (bit *i* = output
    component *i*), computed as one broadcasted ``uint8`` matmul
    reduced modulo 2 — no per-address Python work.

    This is the batch companion of :func:`gf2_matvec`: exploding each
    address into its bit vector, multiplying, and repacking gives
    exactly ``gf2_matvec(matrix, bits(a))`` for every element.  Both
    dimensions are capped at 64 so addresses pack into ``uint64`` and
    the ``uint8`` accumulation (row sums of at most 64) cannot wrap.
    """
    m = as_gf2(matrix)
    if m.ndim != 2:
        raise GF2Error(f"matrix must be 2-D, got shape {m.shape}")
    out_width, in_width = m.shape
    if in_width > 64 or out_width > 64:
        raise GF2Error(
            f"gf2_matvec_batch supports at most 64-bit addresses, "
            f"got matrix shape {m.shape}"
        )
    addr = np.atleast_1d(np.asarray(addresses, dtype=np.uint64))
    if addr.ndim != 1:
        raise GF2Error(f"addresses must be one-dimensional, got shape {addr.shape}")
    if addr.size == 0:
        return addr.copy()
    if in_width < 64 and int(addr.max()) >> in_width:
        raise GF2Error(
            f"address 0x{int(addr.max()):x} does not fit in {in_width} bits"
        )
    in_shifts = np.arange(in_width, dtype=np.uint64)
    bits = ((addr[:, np.newaxis] >> in_shifts) & np.uint64(1)).astype(np.uint8)
    # uint8 matmul accumulates modulo 256; row sums are <= 64, so the
    # accumulation is exact and `& 1` is the mod-2 reduction.
    out_bits = (bits @ m.T) & np.uint8(1)
    out_weights = np.uint64(1) << np.arange(out_width, dtype=np.uint64)
    return (out_bits.astype(np.uint64) * out_weights).sum(axis=1, dtype=np.uint64)


def _row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Gaussian elimination to row echelon form.

    Returns the reduced matrix and the list of pivot column indices.
    Works on a copy.
    """
    m = matrix.copy()
    rows, cols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        # Find a pivot row with a 1 in column c.
        pivot_candidates = np.nonzero(m[r:, c])[0]
        if pivot_candidates.size == 0:
            continue
        pivot = r + int(pivot_candidates[0])
        if pivot != r:
            m[[r, pivot]] = m[[pivot, r]]
        # Eliminate all other 1s in this column (full reduction).
        elim = np.nonzero(m[:, c])[0]
        elim = elim[elim != r]
        m[elim] ^= m[r]
        pivots.append(c)
        r += 1
    return m, pivots


def gf2_rank(matrix) -> int:
    """Rank of *matrix* over GF(2)."""
    m = as_gf2(matrix)
    if m.size == 0:
        return 0
    _, pivots = _row_reduce(m)
    return len(pivots)


def is_invertible(matrix) -> bool:
    """True if the square matrix *matrix* is invertible over GF(2)."""
    m = as_gf2(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    return gf2_rank(m) == m.shape[0]


def gf2_inverse(matrix) -> np.ndarray:
    """Inverse of a square matrix over GF(2).

    Raises :class:`GF2Error` if the matrix is singular.
    """
    m = as_gf2(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise GF2Error(f"only square matrices can be inverted, got shape {m.shape}")
    n = m.shape[0]
    augmented = np.concatenate([m, identity(n)], axis=1)
    reduced, pivots = _row_reduce(augmented)
    if pivots[:n] != list(range(n)):
        raise GF2Error("matrix is singular over GF(2)")
    return reduced[:, n:].copy()


def gf2_solve(matrix, rhs) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2) for invertible *matrix*."""
    return gf2_matvec(gf2_inverse(matrix), rhs)


def random_matrix(n: int, m: int, rng: np.random.Generator, density: float = 0.5) -> np.ndarray:
    """A random n-by-m GF(2) matrix with approximately *density* ones."""
    if not 0.0 <= density <= 1.0:
        raise GF2Error(f"density must be within [0, 1], got {density}")
    return (rng.random((n, m)) < density).astype(np.uint8)


def random_invertible(n: int, rng: np.random.Generator, max_tries: int = 256) -> np.ndarray:
    """Draw a uniformly random invertible n-by-n GF(2) matrix.

    Rejection sampling: the probability that a random binary matrix is
    invertible converges to ~0.289 as n grows, so a handful of tries
    suffices in practice.  Raises :class:`GF2Error` if *max_tries*
    draws all fail (astronomically unlikely for sane *n*).
    """
    if n == 0:
        return identity(0)
    for _ in range(max_tries):
        candidate = random_matrix(n, n, rng)
        if is_invertible(candidate):
            return candidate
    raise GF2Error(f"failed to draw an invertible {n}x{n} matrix in {max_tries} tries")


def permutation_matrix(permutation) -> np.ndarray:
    """Permutation matrix P such that ``(P @ v)[i] == v[permutation[i]]``.

    *permutation* must be a permutation of ``range(n)``.
    """
    perm = list(permutation)
    n = len(perm)
    if sorted(perm) != list(range(n)):
        raise GF2Error(f"not a permutation of range({n}): {perm}")
    p = np.zeros((n, n), dtype=np.uint8)
    p[np.arange(n), perm] = 1
    return p
