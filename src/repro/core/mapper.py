"""The address mapper unit: scheme application + vectorized decode.

In hardware the BIM sits directly after the memory coalescer
(paper Section IV) and is a fixed-function XOR tree (Fig. 7).  In this
reproduction the :class:`AddressMapper` is the single component the
simulator talks to: it applies a :class:`~repro.core.schemes.MappingScheme`
to whole request arrays and decodes the mapped addresses into DRAM
coordinates (channel, bank, row, column, ...) in one vectorized pass.

It also exposes the hardware cost model used for sanity checks: gate
count and XOR-tree depth of the scheme's matrix.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .address_map import AddressMap
from .schemes import MappingScheme

__all__ = ["AddressMapper", "decode_fields", "HardwareCost"]

# Per-map decode plans: field name -> [(src_shift, mask, dst_shift)].
# Keyed weakly so long-lived processes (sweep workers) do not pin maps.
_DECODE_PLANS: "weakref.WeakKeyDictionary[AddressMap, List[Tuple[str, List[Tuple[np.uint64, np.uint64, np.uint64]]]]]" = (
    weakref.WeakKeyDictionary()
)


def _decode_plan(address_map: AddressMap):
    """Decompose every field into maximal contiguous bit runs.

    A field whose physical bits are consecutive (which covers almost
    every run of every real map) then decodes with a single
    shift-and-mask instead of one numpy pass per bit.
    """
    plan = _DECODE_PLANS.get(address_map)
    if plan is not None:
        return plan
    plan = []
    for name in address_map.field_names:
        bits = address_map.field(name).bits
        runs: List[Tuple[np.uint64, np.uint64, np.uint64]] = []
        start = 0
        for i in range(1, len(bits) + 1):
            if i == len(bits) or bits[i] != bits[i - 1] + 1:
                length = i - start
                runs.append((
                    np.uint64(bits[start]),           # source shift
                    np.uint64((1 << length) - 1),     # mask after shift
                    np.uint64(start),                 # destination shift
                ))
                start = i
        plan.append((name, runs))
    _DECODE_PLANS[address_map] = plan
    return plan


def decode_fields(address_map: AddressMap, addresses: np.ndarray) -> Dict[str, np.ndarray]:
    """Vectorized field extraction for an array of addresses.

    Returns one int64 array per field of *address_map*, each entry the
    field's value for the corresponding address.
    """
    addr = np.asarray(addresses, dtype=np.uint64)
    out: Dict[str, np.ndarray] = {}
    for name, runs in _decode_plan(address_map):
        if not runs:  # zero-width field: its value is always 0
            out[name] = np.zeros(addr.shape, dtype=np.int64)
            continue
        src_shift, mask, dst_shift = runs[0]
        value = ((addr >> src_shift) & mask) << dst_shift
        for src_shift, mask, dst_shift in runs[1:]:
            value |= ((addr >> src_shift) & mask) << dst_shift
        out[name] = value.astype(np.int64)
    return out


@dataclass(frozen=True)
class HardwareCost:
    """Cost of a direct XOR-tree implementation of a mapping scheme."""

    xor_gates: int
    tree_depth: int
    latency_cycles: int

    def __str__(self) -> str:
        return (
            f"{self.xor_gates} two-input XOR gates, depth {self.tree_depth}, "
            f"{self.latency_cycles} pipeline cycle(s)"
        )


class AddressMapper:
    """Applies a mapping scheme to request streams.

    The mapper is stateless apart from a served-request counter; it is
    safe to share one instance across all SMs (as the hardware would).
    """

    def __init__(self, scheme: MappingScheme) -> None:
        self._scheme = scheme
        self._mapped_requests = 0

    @property
    def scheme(self) -> MappingScheme:
        return self._scheme

    @property
    def address_map(self) -> AddressMap:
        return self._scheme.address_map

    @property
    def latency_cycles(self) -> int:
        """Pipeline latency the mapping adds to every request."""
        return self._scheme.extra_latency_cycles

    @property
    def mapped_requests(self) -> int:
        """Number of addresses mapped so far (across all calls)."""
        return self._mapped_requests

    def map_addresses(self, addresses) -> np.ndarray:
        """Map an array of input addresses to DRAM-visible addresses."""
        addr = np.atleast_1d(np.asarray(addresses, dtype=np.uint64))
        self._mapped_requests += addr.size
        return self._scheme.map(addr)

    def map_and_decode(self, addresses) -> Dict[str, np.ndarray]:
        """Map addresses and decode every field of the result.

        The returned dict additionally carries the mapped flat address
        under the key ``"address"``.
        """
        mapped = self.map_addresses(addresses)
        fields = decode_fields(self.address_map, mapped)
        fields["address"] = mapped.astype(np.int64)
        return fields

    def hardware_cost(self) -> HardwareCost:
        """XOR-tree cost of this scheme (paper Fig. 7 discussion)."""
        return HardwareCost(
            xor_gates=self._scheme.bim.xor_gate_count(),
            tree_depth=self._scheme.bim.xor_tree_depth(),
            latency_cycles=self._scheme.extra_latency_cycles,
        )

    def __repr__(self) -> str:
        return f"AddressMapper(scheme={self._scheme.name!r})"
