"""repro — a reproduction of "Get Out of the Valley: Power-Efficient
Address Mapping for GPUs" (Liu et al., ISCA 2018).

The package implements the paper's contribution and every substrate it
is evaluated on:

* :mod:`repro.core` — the Binary Invertible Matrix (BIM) abstraction,
  the six address mapping schemes (BASE, PM, RMP, PAE, FAE, ALL) and
  the window-based entropy metric;
* :mod:`repro.dram` — a GDDR5-class DRAM model with banks, FR-FCFS
  controllers, a Micron-style power model and a 3D-stacked variant;
* :mod:`repro.gpu` — SMs, caches with MSHRs, a crossbar NoC,
  coalescing and TB scheduling;
* :mod:`repro.sim` — the event-driven full-system simulator;
* :mod:`repro.workloads` — the 16-benchmark suite of the paper's
  Table II as synthetic trace generators;
* :mod:`repro.analysis` — the experiment harness regenerating every
  table and figure of the evaluation.

Quickstart::

    from repro import api

    table = api.compare("MT", ["PAE"], scale=0.5)
    print(table["PAE"]["speedup"])  # PAE speedup over the Hynix map

or, assembling the pieces yourself::

    from repro import hynix_gddr5_map, simulate, build_workload
    from repro.registry import make_scheme

    amap = hynix_gddr5_map()
    workload = build_workload("MT")
    base = simulate(workload, make_scheme("BASE", amap))
    pae = simulate(workload, make_scheme("PAE", amap))
    print(base.cycles / pae.cycles)

Custom schemes and workloads register via :mod:`repro.registry`
decorators or travel as serializable :mod:`repro.specs` documents —
see ``examples/custom_scheme.py``.
"""

from . import api, registry, specs
from .analysis import ExperimentRunner, harmonic_mean
from .core import (
    BIM,
    AddressMap,
    AddressMapper,
    BinaryInvertibleMatrix,
    EntropyProfile,
    MappingScheme,
    SCHEME_NAMES,
    application_entropy_profile,
    build_scheme,
    find_entropy_valleys,
    has_parallel_bit_valley,
    hynix_gddr5_map,
    kernel_entropy_profile,
    stacked_memory_map,
    window_entropy,
)
from .dram import DRAMSystem, DRAMTiming, gddr5_timing, stacked_timing
from .gpu import GPUConfig, baseline_config, config_with_sms
from .registry import (
    register_memory,
    register_scheme,
    register_workload,
)
from .sim import GPUSystem, SimulationResult, simulate, speedup
from .specs import ScenarioSpec, SchemeSpec, WorkloadSpec
from .workloads import (
    ALL_BENCHMARKS,
    NON_VALLEY_BENCHMARKS,
    VALLEY_BENCHMARKS,
    Workload,
    build_suite,
    build_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "AddressMap",
    "AddressMapper",
    "BIM",
    "BinaryInvertibleMatrix",
    "DRAMSystem",
    "DRAMTiming",
    "EntropyProfile",
    "ExperimentRunner",
    "GPUConfig",
    "GPUSystem",
    "MappingScheme",
    "NON_VALLEY_BENCHMARKS",
    "SCHEME_NAMES",
    "ScenarioSpec",
    "SchemeSpec",
    "SimulationResult",
    "VALLEY_BENCHMARKS",
    "Workload",
    "WorkloadSpec",
    "api",
    "application_entropy_profile",
    "baseline_config",
    "build_scheme",
    "build_suite",
    "build_workload",
    "config_with_sms",
    "find_entropy_valleys",
    "gddr5_timing",
    "harmonic_mean",
    "has_parallel_bit_valley",
    "hynix_gddr5_map",
    "kernel_entropy_profile",
    "register_memory",
    "register_scheme",
    "register_workload",
    "registry",
    "simulate",
    "specs",
    "speedup",
    "stacked_memory_map",
    "stacked_timing",
    "window_entropy",
    "__version__",
]
