"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``schemes``
    List every registered mapping scheme (built-ins plus plugins) with
    its hardware cost.  ``--register pkg.module:fn`` imports and
    registers user schemes first.
``map``
    Map one address through a scheme and show the DRAM coordinates.
``entropy``
    Window-based entropy profile of a workload (ASCII bars + valleys).
``simulate``
    Run one workload under one or more schemes and print the paper's
    headline metrics (routed through :func:`repro.api.compare`).
``sweep``
    Run a (benchmark x scheme x seed x SM-count x memory) grid through
    the parallel sweep runner and emit a machine-readable JSON report.
    Results are cached on disk, so re-runs are near-instant; the JSON
    is byte-identical regardless of worker count or cache state.
    ``--spec scenario.json`` loads the whole grid from a
    :class:`~repro.specs.ScenarioSpec` file (which may embed custom
    scheme/workload specs); ``--shard I/N`` runs one deterministic
    slice of the grid and emits a partial shard report instead.
``merge``
    Combine N shard reports — or a shared cache directory plus the
    grid flags / ``--spec`` — into a full report byte-identical to an
    unsharded ``repro sweep`` of the same grid.
``cache``
    Inspect (``ls``, with ``--json`` for machine-readable output) or
    evict stale schema versions from (``prune``) an on-disk result
    cache.
``serve``
    Run the sweep-as-a-service HTTP server (:mod:`repro.serve`): a
    warm runner pool shared across requests, async jobs, request
    coalescing, and per-tenant cache namespaces with quotas.
``submit``
    Submit the grid the flags describe to a running ``repro serve``
    (via :mod:`repro.client`), wait, and write the report — the remote
    twin of ``sweep``, with the same output and exit codes.
``profile``
    Run one configuration under :mod:`cProfile` (inline, no cache) and
    print the hottest functions, so perf work starts from a measured
    profile instead of a guess.
``export-scheme``
    Serialize a scheme's realized BIM to JSON (for RTL generators,
    configs, or re-import on another machine).
``import-scheme``
    Validate a scheme file (exported or hand-written spec) and emit
    the normalized :class:`~repro.specs.SchemeSpec` JSON usable as
    ``--schemes @file`` or inside a scenario spec.

Anywhere a scheme or benchmark name is accepted, ``@path.json`` loads
a spec file instead — so custom scenarios flow through the same
commands as the paper's built-ins.

Exit codes: 0 success, 2 usage / spec / merge errors, 3 **partial
success** — the sweep (or merge) completed but some configs were
quarantined by the failure policy; the report's ``"failures"`` section
lists them (see :mod:`repro.runner.faults`).

Examples
--------
::

    python -m repro schemes --register mypkg.schemes:my_builder
    python -m repro map 0x12345680 --scheme PAE
    python -m repro entropy MT
    python -m repro simulate SRAD2 --schemes BASE,PM,PAE --scale 0.5
    python -m repro sweep --benchmarks MT,SP --schemes BASE,@my.json -o report.json
    python -m repro sweep --spec scenario.json -o report.json
    python -m repro sweep --shard 1/4 --cache-dir /shared -o shard1.json
    python -m repro merge shard*.json -o report.json
    python -m repro cache ls --cache-dir .repro-cache --json
    python -m repro serve --port 0 --workers 2 --tenant-max-bytes 10000000
    python -m repro submit --server http://127.0.0.1:8731 --benchmarks MT,SP
    python -m repro export-scheme PAE --seed 1 -o pae.json
    python -m repro import-scheme pae.json -o pae.spec.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Union

from . import api, registry
from .analysis.report import format_table
from .core import SCHEME_NAMES, find_entropy_valleys, hynix_gddr5_map
from .core.serialize import dump_scheme
from .runner import (
    CACHE_SCHEMA_VERSION,
    FailurePolicy,
    MergeError,
    ResultCache,
    ShardSpec,
    SweepGrid,
    SweepRunner,
    default_workers,
    merge_shard_reports,
    render_report,
    report_from_cache,
)
from .sim.fidelity import parse_fidelity
from .specs import ScenarioSpec, SchemeSpec, WorkloadSpec
from .workloads.suite import ALL_BENCHMARKS, VALLEY_BENCHMARKS

__all__ = ["main"]


def _scheme_value(text: str) -> Union[str, SchemeSpec]:
    """A scheme CLI token: a registered name, or ``@file`` for a spec."""
    text = text.strip()
    if text.startswith("@"):
        return SchemeSpec.from_file(text[1:])
    return text.upper()


def _workload_value(text: str) -> Union[str, WorkloadSpec]:
    """A benchmark CLI token: a registered name, or ``@file`` for a spec."""
    text = text.strip()
    if text.startswith("@"):
        return WorkloadSpec.from_file(text[1:])
    return text.upper()


def _apply_registrations(args) -> None:
    """Load ``--register`` plugins and export them to worker processes.

    The entry points are appended to :data:`repro.registry.PLUGIN_ENV_VAR`
    so pool workers (which inherit the environment) register the same
    entries before validating configs.
    """
    entries = [e for e in getattr(args, "register", []) or [] if e.strip()]
    if not entries:
        return
    for entry in entries:
        registry.load_entry_point(entry)
    existing = os.environ.get(registry.PLUGIN_ENV_VAR, "").strip()
    merged = ",".join(filter(None, [existing] + entries))
    os.environ[registry.PLUGIN_ENV_VAR] = merged


def _cmd_schemes(args) -> int:
    _apply_registrations(args)
    amap = hynix_gddr5_map()
    rows = []
    for name in registry.scheme_names():
        entry = registry.scheme_entry(name)
        scheme = registry.make_scheme(name, amap, seed=args.seed)
        rows.append([
            name, scheme.strategy, scheme.bim.xor_gate_count(),
            scheme.bim.xor_tree_depth(), scheme.extra_latency_cycles,
            entry.origin,
        ])
    print(format_table(
        ["scheme", "strategy", "XOR gates", "tree depth", "latency (cyc)",
         "origin"],
        rows,
    ))
    return 0


def _cmd_map(args) -> int:
    _apply_registrations(args)
    amap = hynix_gddr5_map()
    scheme = SchemeSpec.from_value(_scheme_value(args.scheme)).build(
        amap, seed=args.seed
    )
    address = int(args.address, 0)
    if not 0 <= address < amap.capacity:
        print(f"error: address must be within the {amap.width}-bit space",
              file=sys.stderr)
        return 2
    mapped = int(scheme.map(address))
    rows = [
        ["input", f"0x{address:08x}"] + [
            str(v) for v in amap.decode(address).values()
        ],
        ["mapped", f"0x{mapped:08x}"] + [
            str(v) for v in amap.decode(mapped).values()
        ],
    ]
    print(format_table(["", "address"] + list(amap.field_names), rows))
    return 0


def _cmd_entropy(args) -> int:
    _apply_registrations(args)
    amap = hynix_gddr5_map()
    profile = api.entropy_profile(
        _workload_value(args.benchmark), scale=args.scale, window=args.window
    )
    parallel = set(amap.parallel_bits())
    for bit in sorted(amap.non_block_bits(), reverse=True):
        bar = "#" * int(round(profile.values[bit] * 40))
        marker = " <- channel/bank" if bit in parallel else ""
        print(f"bit {bit:2d} |{bar:<40}|{marker}")
    print(f"\nvalleys: {find_entropy_valleys(profile) or 'none'}")
    print(f"channel/bank-bit entropy: {profile.parallel_bit_entropy():.3f}")
    return 0


def _cmd_simulate(args) -> int:
    _apply_registrations(args)
    schemes = [_scheme_value(s) for s in args.schemes.split(",") if s.strip()]
    print(f"simulating {args.benchmark} ...", file=sys.stderr)
    table = api.compare(
        _workload_value(args.benchmark), schemes,
        seed=args.seed, scale=args.scale,
        fidelity=parse_fidelity(args.fidelity),
    )
    rows = [
        [name, m["cycles"], m["speedup"], m["row_hit_rate"] * 100,
         m["channel_parallelism"], m["dram_power_watts"], m["perf_per_watt"]]
        for name, m in table.items()
    ]
    print(format_table(
        ["scheme", "cycles", "speedup", "row-hit %", "chan MLP",
         "DRAM W", "perf/W"],
        rows, floatfmt="{:.2f}",
    ))
    return 0


def _parse_names(text: str) -> List[Union[str, WorkloadSpec]]:
    """Split a comma list, honoring the 'valley'/'all' suite shorthands."""
    cleaned = text.strip().lower()
    if cleaned == "valley":
        return list(VALLEY_BENCHMARKS)
    if cleaned == "all":
        return list(ALL_BENCHMARKS)
    return [
        _workload_value(part) for part in text.split(",") if part.strip()
    ]


def _grid_from_args(args) -> SweepGrid:
    """Build (and eagerly validate) the sweep grid the flags describe."""
    if getattr(args, "spec", ""):
        grid = ScenarioSpec.from_file(args.spec).grid()
    else:
        grid = SweepGrid(
            benchmarks=tuple(_parse_names(args.benchmarks)),
            schemes=tuple(
                _scheme_value(s) for s in args.schemes.split(",") if s.strip()
            ),
            seeds=tuple(int(s) for s in args.seeds.split(",")),
            n_sms=tuple(int(n) for n in args.n_sms.split(",")),
            memories=tuple(m.strip() for m in args.memories.split(",")),
            scale=args.scale,
            window=args.window,
            fidelity=parse_fidelity(args.fidelity),
        )
    grid.configs()  # validates every axis value before any work
    return grid


def _write_report(text: str, output: str) -> None:
    if output == "-":
        sys.stdout.write(text)
    else:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}", file=sys.stderr)


def _progress_printer():
    """Stderr progress callback: executed count, elapsed, estimate-based ETA."""
    def emit(progress) -> None:
        print(
            f"\r[{progress.done}/{progress.total} executed] "
            f"{progress.elapsed_seconds:.0f}s elapsed, "
            f"eta {progress.eta_seconds:.0f}s ",
            end="", file=sys.stderr, flush=True,
        )
    return emit


def _print_failures(report, command: str) -> int:
    """Stderr summary of a report's quarantined configs; 3 if any, else 0."""
    failures = report.get("failures", [])
    if not failures:
        return 0
    print(
        f"warning: {command} completed partially — "
        f"{len(failures)} config(s) quarantined:",
        file=sys.stderr,
    )
    for record in failures:
        print(
            f"  {record['benchmark']}/{record['scheme']} "
            f"[{record['kind']}] after {record['attempts']} attempt(s): "
            f"{record['error']}",
            file=sys.stderr,
        )
    return 3


def _cmd_sweep(args) -> int:
    _apply_registrations(args)
    grid = _grid_from_args(args)
    shard = ShardSpec.parse(args.shard) if args.shard else None
    workers = args.workers if args.workers > 0 else default_workers()
    # The CLI sweeps non-strict: a quarantined config yields a partial
    # report plus exit code 3 instead of an aborted run — a fleet's
    # launcher wants the 199 healthy results, not a stack trace.
    with SweepRunner(
        workers=workers,
        cache_dir=args.cache_dir if args.cache_dir else None,
        claims=args.claims,
        progress=_progress_printer() if args.progress else None,
        policy=FailurePolicy(
            max_retries=args.max_retries,
            timeout=args.timeout if args.timeout > 0 else None,
        ),
    ) as runner:  # context manager: deterministic pool shutdown, even on error
        started = time.perf_counter()
        report = api.sweep(grid, shard=shard, runner=runner, strict=False)
        elapsed = time.perf_counter() - started
    if args.progress:
        print(file=sys.stderr)  # terminate the \r progress line
    _write_report(render_report(report), args.output)
    # Accounting goes to stderr only: the JSON must stay byte-identical
    # across worker counts and cache states.
    stats = runner.stats
    slice_note = f" [shard {shard}]" if shard is not None else ""
    print(
        f"{stats.requested} runs{slice_note}: {stats.cache_hits} cache hits, "
        f"{stats.memory_hits} memo hits, {stats.executed} executed, "
        f"{stats.failed} failed ({elapsed:.2f}s, {workers} worker(s))",
        file=sys.stderr,
    )
    return _print_failures(report, "sweep")


def _cmd_merge(args) -> int:
    _apply_registrations(args)
    if args.shard_reports:
        reports = []
        for path in args.shard_reports:
            with open(path) as handle:
                reports.append(json.load(handle))
        merged = merge_shard_reports(reports)
    elif args.cache_dir:
        grid = _grid_from_args(args)
        merged = report_from_cache(grid, ResultCache(args.cache_dir))
    else:
        print(
            "error: give shard report files, or --cache-dir plus the "
            "grid flags", file=sys.stderr,
        )
        return 2
    _write_report(render_report(merged), args.output)
    print(f"merged {len(merged['runs'])} runs", file=sys.stderr)
    return _print_failures(merged, "merge")


def _state_cache_at(cache_dir):
    """The warmed-state cache living under *cache_dir*, or None.

    Sweeps default their :class:`StateCache` to ``<cache_dir>/state``
    (see :class:`~repro.runner.sweep.SweepRunner`), so the cache CLI
    reports and prunes that same location.
    """
    from .runner.state_cache import StateCache

    state_root = Path(cache_dir) / "state"
    if not state_root.is_dir():
        return None
    return StateCache(state_root)


def _cmd_cache_ls(args) -> int:
    from .runner.state_cache import STATE_SCHEMA_VERSION

    cache = ResultCache(args.cache_dir)
    entries = cache.entries()
    state = _state_cache_at(args.cache_dir)
    if getattr(args, "json", False):
        # Machine-readable form for dashboards / quota scripts: every
        # record plus the totals, deterministically ordered by key.
        walls = [e.wall_seconds for e in entries if e.wall_seconds is not None]
        document = {
            "root": str(cache.root),
            "current_schema": CACHE_SCHEMA_VERSION,
            "totals": {
                "entries": len(entries),
                "bytes": sum(e.size_bytes for e in entries),
                "wall_seconds": round(sum(walls), 6),
            },
            "entries": [
                e.to_dict() for e in sorted(entries, key=lambda e: e.key)
            ],
        }
        if state is not None:
            document["state"] = {
                "root": str(state.root),
                "current_schema": STATE_SCHEMA_VERSION,
                "totals": state.usage(),
                "entries": [
                    e.to_dict()
                    for e in sorted(state.entries(), key=lambda e: e.key)
                ],
            }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    by_schema = {}
    for entry in entries:
        by_schema.setdefault(entry.schema, []).append(entry)
    rows = []
    for schema in sorted(by_schema, key=lambda s: (s is None, s)):
        group = by_schema[schema]
        walls = [e.wall_seconds for e in group if e.wall_seconds is not None]
        rows.append([
            "?" if schema is None else str(schema),
            len(group),
            sum(e.size_bytes for e in group),
            f"{sum(walls):.1f}" if walls else "-",
            f"{sum(walls) / len(walls):.2f}" if walls else "-",
            "current" if schema == CACHE_SCHEMA_VERSION else "stale",
        ])
    print(format_table(
        ["schema", "entries", "bytes", "wall total (s)", "wall mean (s)", ""],
        rows,
    ))
    print(
        f"\n{len(entries)} records under {cache.root} "
        f"(current schema: {CACHE_SCHEMA_VERSION})"
    )
    if state is not None:
        usage = state.usage()
        stale = sum(
            1 for e in state.entries() if e.schema != STATE_SCHEMA_VERSION
        )
        stale_note = f", {stale} stale" if stale else ""
        print(
            f"warmed-state cache: {usage['entries']} stream(s), "
            f"{usage['bytes']} bytes under {state.root} "
            f"(schema {STATE_SCHEMA_VERSION}{stale_note})"
        )
    return 0


def _cmd_cache_prune(args) -> int:
    versions = []
    for chunk in args.schema_version:
        for part in chunk.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                versions.append(int(part))
            except ValueError:
                print(f"error: bad schema version {part!r}", file=sys.stderr)
                return 2
    if not versions and not args.stale:
        print(
            "error: nothing to prune — pass --schema-version N and/or --stale",
            file=sys.stderr,
        )
        return 2
    if getattr(args, "state", False):
        from .runner.state_cache import STATE_SCHEMA_VERSION

        if STATE_SCHEMA_VERSION in versions:
            print(
                f"error: refusing to prune the current state schema version "
                f"({STATE_SCHEMA_VERSION}); delete the state dir if you "
                f"mean it",
                file=sys.stderr,
            )
            return 2
        state = _state_cache_at(args.cache_dir)
        if state is None:
            print(f"no warmed-state cache under {args.cache_dir}")
            return 0
        removed, kept = state.prune(schema_versions=versions, stale=args.stale)
        print(
            f"pruned {removed} state record(s), kept {kept} ({state.root})"
        )
        return 0
    if CACHE_SCHEMA_VERSION in versions:
        print(
            f"error: refusing to prune the current schema version "
            f"({CACHE_SCHEMA_VERSION}); delete the cache dir if you mean it",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(args.cache_dir)
    removed, kept = cache.prune(schema_versions=versions, stale=args.stale)
    print(f"pruned {removed} record(s), kept {kept} ({cache.root})")
    return 0


def _cmd_serve(args) -> int:
    """Run the sweep-as-a-service HTTP server in the foreground."""
    import asyncio

    from .serve import ReproServer, TenantQuota

    workers = args.workers if args.workers > 0 else default_workers()
    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=workers,
        runners=args.runners,
        max_jobs=args.max_jobs,
        cache_dir=args.cache_dir if args.cache_dir else None,
        quota=TenantQuota(
            max_bytes=args.tenant_max_bytes,
            max_entries=args.tenant_max_entries,
            max_jobs=args.tenant_max_jobs,
        ),
        policy=FailurePolicy(
            max_retries=args.max_retries,
            timeout=args.timeout if args.timeout > 0 else None,
        ),
        claims=args.claims,
    )

    async def _serve() -> None:
        await server.start()
        # Port file first, announce line second: launchers wait for the
        # line and then read the file, so this order leaves no race.
        if args.port_file:
            with open(args.port_file, "w") as handle:
                handle.write(f"{server.port}\n")
        print(f"repro serve listening on {server.url}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.close(wait=False)
    return 0


def _cmd_submit(args) -> int:
    """Submit a sweep to a running server and (by default) wait for it."""
    from .client import ReproClient

    _apply_registrations(args)
    grid = _grid_from_args(args)
    client = ReproClient(
        args.server, tenant=args.tenant or None, timeout=args.http_timeout
    )
    job = client.submit(grid.to_dict())
    job_id = job["id"]
    print(f"submitted {job_id} ({job['state']})", file=sys.stderr)
    if args.no_wait:
        print(job_id)
        return 0
    status = client.wait(
        job_id,
        timeout=args.wait_timeout if args.wait_timeout > 0 else None,
        poll_seconds=args.poll,
    )
    state = status.get("state")
    if state == "failed":
        print(f"error: job {job_id} failed: {status.get('error')}",
              file=sys.stderr)
        return 2
    _write_report(client.report_text(job_id), args.output)
    # Same partial-success contract as a local `repro sweep`: exit 3
    # and a stderr summary when any config was quarantined server-side.
    return _print_failures(client.report(job_id), "submit")


def _cmd_profile(args) -> int:
    """Run one config under cProfile and print the hottest rows."""
    _apply_registrations(args)
    import cProfile
    import io as io_module
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = api.simulate(
        _workload_value(args.benchmark),
        _scheme_value(args.scheme),
        seed=args.seed,
        n_sms=args.n_sms,
        memory=args.memory,
        scale=args.scale,
        fidelity=parse_fidelity(args.fidelity),
        workers=1,  # inline, in-process: the profile must see the run
    )
    profiler.disable()
    stream = io_module.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort)
    stats.print_stats(args.limit)
    print(stream.getvalue(), end="")
    print(
        f"{args.benchmark}/{args.scheme} @ scale={args.scale} "
        f"fidelity={args.fidelity}: {result.cycles} cycles, "
        f"{result.metadata.get('events', '?')} events",
        file=sys.stderr,
    )
    return 0


def _cmd_export_scheme(args) -> int:
    _apply_registrations(args)
    spec = SchemeSpec.from_value(_scheme_value(args.scheme))
    scheme = spec.build(hynix_gddr5_map(), seed=args.seed)
    dump_scheme(scheme, args.output)
    print(f"wrote {scheme.name} (seed {args.seed}) to {args.output}")
    return 0


def _cmd_import_scheme(args) -> int:
    _apply_registrations(args)
    spec = SchemeSpec.from_file(args.scheme_file)
    # Re-validate: realize the BIM (invertibility is checked by the
    # constructor) against the reference map before vouching for it.
    scheme = spec.build(hynix_gddr5_map(), seed=args.seed)
    text = json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
    _write_report(text, args.output)
    print(
        f"imported {spec.name} ({spec.kind}): width {scheme.bim.width}, "
        f"{scheme.bim.xor_gate_count()} XOR gates, spec hash "
        f"{spec.spec_hash()[:16]}",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Get Out of the Valley' (ISCA 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_fidelity_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--fidelity", default="exact",
            help="simulation fidelity: 'exact' (default), "
                 "'sampled[:warmup=W,window=D,period=P]' for interval-"
                 "sampled approximation, or 'auto[:exemplars=N,...]' for "
                 "the per-kernel planned mode (see repro.sim.fidelity)",
        )

    def add_register_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--register", action="append", default=[], metavar="PKG.MOD[:FN]",
            help="import and register a scheme/workload plugin before "
                 "running (repeatable; exported to worker processes via "
                 f"${registry.PLUGIN_ENV_VAR})",
        )

    p = sub.add_parser(
        "schemes", help="list registered mapping schemes and hardware cost"
    )
    p.add_argument("--seed", type=int, default=0)
    add_register_arg(p)
    p.set_defaults(func=_cmd_schemes)

    p = sub.add_parser("map", help="map one address through a scheme")
    p.add_argument("address", help="address (decimal or 0x-hex)")
    p.add_argument(
        "--scheme", default="PAE",
        help="registered scheme name, or @file for a scheme spec",
    )
    p.add_argument("--seed", type=int, default=0)
    add_register_arg(p)
    p.set_defaults(func=_cmd_map)

    p = sub.add_parser("entropy", help="entropy profile of a workload")
    p.add_argument(
        "benchmark", help="registered benchmark, or @file for a workload spec"
    )
    p.add_argument("--window", type=int, default=12)
    p.add_argument("--scale", type=float, default=0.5)
    add_register_arg(p)
    p.set_defaults(func=_cmd_entropy)

    p = sub.add_parser("simulate", help="simulate a workload under schemes")
    p.add_argument(
        "benchmark", help="registered benchmark, or @file for a workload spec"
    )
    p.add_argument("--schemes", default="BASE,PM,PAE",
                   help="comma-separated scheme names (or @file specs)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    add_fidelity_arg(p)
    add_register_arg(p)
    p.set_defaults(func=_cmd_simulate)

    def add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--spec", default="",
            help="scenario spec file describing the whole grid "
                 "(overrides the axis flags below)",
        )
        p.add_argument(
            "--benchmarks", default="valley",
            help="comma-separated names or @file specs, or 'valley' / "
                 "'all' (default: valley)",
        )
        p.add_argument(
            "--schemes", default=",".join(SCHEME_NAMES),
            help="comma-separated scheme names or @file specs (BASE is "
                 "always added)",
        )
        p.add_argument("--seeds", default="0", help="comma-separated BIM seeds")
        p.add_argument("--n-sms", default="12", help="comma-separated SM counts")
        p.add_argument(
            "--memories", default="gddr5",
            help="comma-separated registered memory kinds (gddr5,stacked,...)",
        )
        p.add_argument("--scale", type=float, default=0.5)
        p.add_argument("--window", type=int, default=12)
        add_fidelity_arg(p)
        add_register_arg(p)

    p = sub.add_parser(
        "sweep", help="run a benchmark x scheme grid, emit a JSON report"
    )
    add_grid_args(p)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 0 = one per CPU or $REPRO_WORKERS (default: 1)",
    )
    p.add_argument(
        "--cache-dir", default=".repro-cache",
        help="on-disk result cache; pass '' to disable (default: .repro-cache)",
    )
    p.add_argument(
        "--shard", default="",
        help="run only shard I/N of the grid (1-based, e.g. 2/4) and emit "
             "a partial report for 'repro merge'",
    )
    p.add_argument(
        "--claims", action="store_true",
        help="use cache claim files so concurrent sweeps sharing the cache "
             "dir never double-run a config",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="report live executed-count / ETA on stderr",
    )
    p.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-run wall-clock timeout in seconds, enforced by the "
             "parent (needs --workers > 1); 0 = no timeout (default)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2,
        help="re-executions of a failing config before it is quarantined "
             "into the report's 'failures' section (default: 2)",
    )
    p.add_argument(
        "-o", "--output", default="-",
        help="report path, or - for stdout (default: -)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "merge",
        help="combine shard reports (or a shared cache dir) into a full report",
    )
    p.add_argument(
        "shard_reports", nargs="*",
        help="partial reports written by 'repro sweep --shard I/N'",
    )
    p.add_argument(
        "--cache-dir", default="",
        help="merge straight from a shared result cache instead of shard "
             "files (requires the grid flags or --spec to match the "
             "original sweep)",
    )
    add_grid_args(p)
    p.add_argument(
        "-o", "--output", default="-",
        help="report path, or - for stdout (default: -)",
    )
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser("cache", help="inspect or prune an on-disk result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    p_ls = cache_sub.add_parser(
        "ls", help="summarize cache entries by schema version"
    )
    p_ls.add_argument("--cache-dir", default=".repro-cache")
    p_ls.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON (per-entry key, size, schema, "
             "wall seconds, mtime, plus totals) instead of the table",
    )
    p_ls.set_defaults(func=_cmd_cache_ls)
    p_prune = cache_sub.add_parser(
        "prune", help="evict records from stale cache schema versions"
    )
    p_prune.add_argument("--cache-dir", default=".repro-cache")
    p_prune.add_argument(
        "--schema-version", action="append", default=[],
        help="schema version(s) to evict (repeatable or comma-separated)",
    )
    p_prune.add_argument(
        "--stale", action="store_true",
        help="evict everything not produced by the current schema version",
    )
    p_prune.add_argument(
        "--state", action="store_true",
        help="prune the warmed-state replay-stream cache at "
             "<cache-dir>/state instead of the result records (schema "
             "versions then refer to STATE_SCHEMA_VERSION)",
    )
    p_prune.set_defaults(func=_cmd_cache_prune)

    p = sub.add_parser(
        "serve",
        help="run the sweep-as-a-service HTTP server (see repro.serve)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8731,
        help="TCP port; 0 binds an ephemeral port, announced on stdout "
             "(default: 8731)",
    )
    p.add_argument(
        "--port-file", default="",
        help="also write the bound port to this file (for launchers "
             "using --port 0)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per runner; 0 = one per CPU or "
             "$REPRO_WORKERS (default: 1)",
    )
    p.add_argument(
        "--runners", type=int, default=1,
        help="warm SweepRunner instances in the pool — at most "
             "runners x workers simulations run at once (default: 1)",
    )
    p.add_argument(
        "--max-jobs", type=int, default=8,
        help="jobs executing concurrently server-wide; excess queue "
             "(default: 8)",
    )
    p.add_argument(
        "--cache-dir", default=".repro-cache",
        help="cache root; each tenant gets <root>/<tenant>/ — pass '' "
             "to disable persistence (default: .repro-cache)",
    )
    p.add_argument(
        "--tenant-max-bytes", type=int, default=0,
        help="per-tenant cache namespace byte quota, enforced after "
             "every job by oldest-first eviction; 0 = unlimited (default)",
    )
    p.add_argument(
        "--tenant-max-entries", type=int, default=0,
        help="per-tenant cache namespace record quota; 0 = unlimited "
             "(default)",
    )
    p.add_argument(
        "--tenant-max-jobs", type=int, default=0,
        help="per-tenant concurrent-job limit (HTTP 429 beyond it); "
             "0 = unlimited (default)",
    )
    p.add_argument(
        "--claims", action="store_true",
        help="use cache claim files (for a cache root shared with "
             "external sweeps)",
    )
    p.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-run wall-clock timeout in seconds; 0 = none (default)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2,
        help="re-executions before a config is quarantined (default: 2)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a sweep to a running 'repro serve' and fetch the report",
    )
    add_grid_args(p)
    p.add_argument(
        "--server", required=True, metavar="URL",
        help="base URL of the server, e.g. http://127.0.0.1:8731",
    )
    p.add_argument(
        "--tenant", default="",
        help="cache namespace, sent as the X-Repro-Tenant header "
             "(default: the server's shared namespace)",
    )
    p.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit instead of waiting for the report",
    )
    p.add_argument(
        "--wait-timeout", type=float, default=0.0,
        help="give up waiting after this many seconds (the job keeps "
             "running server-side); 0 = wait forever (default)",
    )
    p.add_argument(
        "--poll", type=float, default=0.25,
        help="status poll interval in seconds (default: 0.25)",
    )
    p.add_argument(
        "--http-timeout", type=float, default=30.0,
        help="per-request HTTP timeout in seconds (default: 30)",
    )
    p.add_argument(
        "-o", "--output", default="-",
        help="report path, or - for stdout (default: -)",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "profile",
        help="run one configuration under cProfile and print the top rows",
    )
    p.add_argument(
        "benchmark", help="registered benchmark, or @file for a workload spec"
    )
    p.add_argument(
        "--scheme", default="BASE",
        help="registered scheme name, or @file for a scheme spec",
    )
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--n-sms", type=int, default=12)
    p.add_argument("--memory", default="gddr5")
    p.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "calls", "ncalls", "time"],
        help="pstats sort key (default: cumulative)",
    )
    p.add_argument(
        "--limit", type=int, default=25,
        help="number of rows to print (default: 25)",
    )
    add_fidelity_arg(p)
    add_register_arg(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "export-scheme", help="serialize a scheme's realized BIM to JSON"
    )
    p.add_argument(
        "scheme", help="registered scheme name, or @file for a scheme spec"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default="scheme.json")
    add_register_arg(p)
    p.set_defaults(func=_cmd_export_scheme)

    p = sub.add_parser(
        "import-scheme",
        help="validate a scheme file and emit its normalized spec JSON",
    )
    p.add_argument(
        "scheme_file",
        help="an exported scheme (export-scheme) or a scheme spec JSON",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "-o", "--output", default="-",
        help="spec path, or - for stdout (default: -)",
    )
    add_register_arg(p)
    p.set_defaults(func=_cmd_import_scheme)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as error:
        # One shared failure path for every command: bad names, spec
        # files, merge mismatches, missing trace files, stale
        # $REPRO_PLUGINS imports — including errors raised mid-run,
        # after validation (e.g. a trace file deleted since its spec
        # was written).  RegistryError / SpecError / MergeError are all
        # ValueError subclasses.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
