"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``schemes``
    List the six mapping schemes with their hardware cost.
``map``
    Map one address through a scheme and show the DRAM coordinates.
``entropy``
    Window-based entropy profile of a benchmark (ASCII bars + valleys).
``simulate``
    Run one benchmark under one or more schemes and print the paper's
    headline metrics.
``sweep``
    Run a (benchmark x scheme x seed x SM-count x memory) grid through
    the parallel sweep runner and emit a machine-readable JSON report.
    Results are cached on disk, so re-runs are near-instant; the JSON
    is byte-identical regardless of worker count or cache state.
    ``--shard I/N`` runs one deterministic slice of the grid (for
    distributing a sweep over N machines sharing a cache directory)
    and emits a partial shard report instead.
``merge``
    Combine N shard reports — or a shared cache directory plus the
    grid flags — into a full report byte-identical to an unsharded
    ``repro sweep`` of the same grid.
``cache``
    Inspect (``ls``) or evict stale schema versions from (``prune``)
    an on-disk result cache.
``export-scheme``
    Serialize a scheme's BIM to JSON (for RTL generators / configs).

Examples
--------
::

    python -m repro schemes
    python -m repro map 0x12345680 --scheme PAE
    python -m repro entropy MT
    python -m repro simulate SRAD2 --schemes BASE,PM,PAE --scale 0.5
    python -m repro sweep --benchmarks MT,SP --schemes BASE,PAE -o report.json
    python -m repro sweep --shard 1/4 --cache-dir /shared -o shard1.json
    python -m repro merge shard*.json -o report.json
    python -m repro cache ls --cache-dir .repro-cache
    python -m repro cache prune --schema-version 1 --cache-dir .repro-cache
    python -m repro export-scheme PAE --seed 1 -o pae.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

from .analysis.report import format_table
from .core import SCHEME_NAMES, build_scheme, find_entropy_valleys, hynix_gddr5_map
from .core.entropy import application_entropy_profile
from .core.serialize import dump_scheme
from .runner import (
    CACHE_SCHEMA_VERSION,
    MergeError,
    ResultCache,
    ShardSpec,
    SweepGrid,
    SweepRunner,
    default_workers,
    merge_shard_reports,
    render_report,
    report_from_cache,
    shard_report,
    sweep_report,
)
from .sim.gpu_system import simulate
from .sim.results import perf_per_watt_ratio, speedup
from .workloads.suite import ALL_BENCHMARKS, VALLEY_BENCHMARKS, build_workload

__all__ = ["main"]


def _cmd_schemes(args) -> int:
    amap = hynix_gddr5_map()
    rows = []
    for name in SCHEME_NAMES:
        scheme = build_scheme(name, amap, seed=args.seed)
        rows.append([
            name, scheme.strategy, scheme.bim.xor_gate_count(),
            scheme.bim.xor_tree_depth(), scheme.extra_latency_cycles,
        ])
    print(format_table(
        ["scheme", "strategy", "XOR gates", "tree depth", "latency (cyc)"], rows
    ))
    return 0


def _cmd_map(args) -> int:
    amap = hynix_gddr5_map()
    scheme = build_scheme(args.scheme, amap, seed=args.seed)
    address = int(args.address, 0)
    if not 0 <= address < amap.capacity:
        print(f"error: address must be within the {amap.width}-bit space",
              file=sys.stderr)
        return 2
    mapped = int(scheme.map(address))
    rows = [
        ["input", f"0x{address:08x}"] + [
            str(v) for v in amap.decode(address).values()
        ],
        ["mapped", f"0x{mapped:08x}"] + [
            str(v) for v in amap.decode(mapped).values()
        ],
    ]
    print(format_table(["", "address"] + list(amap.field_names), rows))
    return 0


def _cmd_entropy(args) -> int:
    amap = hynix_gddr5_map()
    workload = build_workload(args.benchmark, scale=args.scale)
    profile = application_entropy_profile(
        workload.entropy_kernel_inputs(), amap, args.window,
        label=args.benchmark,
    )
    parallel = set(amap.parallel_bits())
    for bit in sorted(amap.non_block_bits(), reverse=True):
        bar = "#" * int(round(profile.values[bit] * 40))
        marker = " <- channel/bank" if bit in parallel else ""
        print(f"bit {bit:2d} |{bar:<40}|{marker}")
    print(f"\nvalleys: {find_entropy_valleys(profile) or 'none'}")
    print(f"channel/bank-bit entropy: {profile.parallel_bit_entropy():.3f}")
    return 0


def _cmd_simulate(args) -> int:
    amap = hynix_gddr5_map()
    workload = build_workload(args.benchmark, scale=args.scale)
    names = [n.strip().upper() for n in args.schemes.split(",")]
    if "BASE" not in names:
        names.insert(0, "BASE")
    results = {}
    for name in names:
        print(f"simulating {args.benchmark} under {name} ...", file=sys.stderr)
        results[name] = simulate(workload, build_scheme(name, amap, seed=args.seed))
    base = results["BASE"]
    rows = [
        [name, r.cycles, speedup(r, base), r.row_hit_rate * 100,
         r.channel_parallelism, r.dram_power.total, perf_per_watt_ratio(r, base)]
        for name, r in results.items()
    ]
    print(format_table(
        ["scheme", "cycles", "speedup", "row-hit %", "chan MLP",
         "DRAM W", "perf/W"],
        rows, floatfmt="{:.2f}",
    ))
    return 0


def _parse_names(text: str) -> List[str]:
    """Split a comma list, honoring the 'valley'/'all' suite shorthands."""
    cleaned = text.strip().lower()
    if cleaned == "valley":
        return list(VALLEY_BENCHMARKS)
    if cleaned == "all":
        return list(ALL_BENCHMARKS)
    return [part.strip() for part in text.split(",") if part.strip()]


def _grid_from_args(args) -> SweepGrid:
    """Build (and eagerly validate) the sweep grid the flags describe."""
    grid = SweepGrid(
        benchmarks=tuple(_parse_names(args.benchmarks)),
        schemes=tuple(s.upper() for s in args.schemes.split(",") if s.strip()),
        seeds=tuple(int(s) for s in args.seeds.split(",")),
        n_sms=tuple(int(n) for n in args.n_sms.split(",")),
        memories=tuple(m.strip() for m in args.memories.split(",")),
        scale=args.scale,
        window=args.window,
    )
    grid.configs()  # validates every axis value before any work
    return grid


def _write_report(text: str, output: str) -> None:
    if output == "-":
        sys.stdout.write(text)
    else:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}", file=sys.stderr)


def _progress_printer():
    """Stderr progress callback: executed count, elapsed, estimate-based ETA."""
    def emit(progress) -> None:
        print(
            f"\r[{progress.done}/{progress.total} executed] "
            f"{progress.elapsed_seconds:.0f}s elapsed, "
            f"eta {progress.eta_seconds:.0f}s ",
            end="", file=sys.stderr, flush=True,
        )
    return emit


def _cmd_sweep(args) -> int:
    try:
        grid = _grid_from_args(args)
        shard = ShardSpec.parse(args.shard) if args.shard else None
        workers = args.workers if args.workers > 0 else default_workers()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    runner = SweepRunner(
        workers=workers,
        cache_dir=args.cache_dir if args.cache_dir else None,
        claims=args.claims,
        progress=_progress_printer() if args.progress else None,
    )
    started = time.perf_counter()
    if shard is not None:
        report = shard_report(grid, shard, runner)
    else:
        report = sweep_report(grid, runner)
    elapsed = time.perf_counter() - started
    if args.progress:
        print(file=sys.stderr)  # terminate the \r progress line
    _write_report(render_report(report), args.output)
    # Accounting goes to stderr only: the JSON must stay byte-identical
    # across worker counts and cache states.
    stats = runner.stats
    slice_note = f" [shard {shard}]" if shard is not None else ""
    print(
        f"{stats.requested} runs{slice_note}: {stats.cache_hits} cache hits, "
        f"{stats.memory_hits} memo hits, {stats.executed} executed "
        f"({elapsed:.2f}s, {workers} worker(s))",
        file=sys.stderr,
    )
    return 0


def _cmd_merge(args) -> int:
    try:
        if args.shard_reports:
            reports = []
            for path in args.shard_reports:
                with open(path) as handle:
                    reports.append(json.load(handle))
            merged = merge_shard_reports(reports)
        elif args.cache_dir:
            grid = _grid_from_args(args)
            merged = report_from_cache(grid, ResultCache(args.cache_dir))
        else:
            print(
                "error: give shard report files, or --cache-dir plus the "
                "grid flags", file=sys.stderr,
            )
            return 2
    except (MergeError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _write_report(render_report(merged), args.output)
    print(f"merged {len(merged['runs'])} runs", file=sys.stderr)
    return 0


def _cmd_cache_ls(args) -> int:
    cache = ResultCache(args.cache_dir)
    entries = cache.entries()
    by_schema = {}
    for entry in entries:
        by_schema.setdefault(entry.schema, []).append(entry)
    rows = []
    for schema in sorted(by_schema, key=lambda s: (s is None, s)):
        group = by_schema[schema]
        walls = [e.wall_seconds for e in group if e.wall_seconds is not None]
        rows.append([
            "?" if schema is None else str(schema),
            len(group),
            sum(e.size_bytes for e in group),
            f"{sum(walls):.1f}" if walls else "-",
            f"{sum(walls) / len(walls):.2f}" if walls else "-",
            "current" if schema == CACHE_SCHEMA_VERSION else "stale",
        ])
    print(format_table(
        ["schema", "entries", "bytes", "wall total (s)", "wall mean (s)", ""],
        rows,
    ))
    print(
        f"\n{len(entries)} records under {cache.root} "
        f"(current schema: {CACHE_SCHEMA_VERSION})"
    )
    return 0


def _cmd_cache_prune(args) -> int:
    versions = []
    for chunk in args.schema_version:
        for part in chunk.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                versions.append(int(part))
            except ValueError:
                print(f"error: bad schema version {part!r}", file=sys.stderr)
                return 2
    if not versions and not args.stale:
        print(
            "error: nothing to prune — pass --schema-version N and/or --stale",
            file=sys.stderr,
        )
        return 2
    if CACHE_SCHEMA_VERSION in versions:
        print(
            f"error: refusing to prune the current schema version "
            f"({CACHE_SCHEMA_VERSION}); delete the cache dir if you mean it",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(args.cache_dir)
    removed, kept = cache.prune(schema_versions=versions, stale=args.stale)
    print(f"pruned {removed} record(s), kept {kept} ({cache.root})")
    return 0


def _cmd_export_scheme(args) -> int:
    amap = hynix_gddr5_map()
    scheme = build_scheme(args.scheme, amap, seed=args.seed)
    dump_scheme(scheme, args.output)
    print(f"wrote {scheme.name} (seed {args.seed}) to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Get Out of the Valley' (ISCA 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schemes", help="list mapping schemes and hardware cost")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_schemes)

    p = sub.add_parser("map", help="map one address through a scheme")
    p.add_argument("address", help="address (decimal or 0x-hex)")
    p.add_argument("--scheme", default="PAE", choices=SCHEME_NAMES)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_map)

    p = sub.add_parser("entropy", help="entropy profile of a benchmark")
    p.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p.add_argument("--window", type=int, default=12)
    p.add_argument("--scale", type=float, default=0.5)
    p.set_defaults(func=_cmd_entropy)

    p = sub.add_parser("simulate", help="simulate a benchmark under schemes")
    p.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p.add_argument("--schemes", default="BASE,PM,PAE",
                   help="comma-separated scheme names")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_simulate)

    def add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--benchmarks", default="valley",
            help="comma-separated names, or 'valley' / 'all' (default: valley)",
        )
        p.add_argument(
            "--schemes", default=",".join(SCHEME_NAMES),
            help="comma-separated scheme names (BASE is always added)",
        )
        p.add_argument("--seeds", default="0", help="comma-separated BIM seeds")
        p.add_argument("--n-sms", default="12", help="comma-separated SM counts")
        p.add_argument(
            "--memories", default="gddr5", help="comma-separated: gddr5,stacked"
        )
        p.add_argument("--scale", type=float, default=0.5)
        p.add_argument("--window", type=int, default=12)

    p = sub.add_parser(
        "sweep", help="run a benchmark x scheme grid, emit a JSON report"
    )
    add_grid_args(p)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 0 = one per CPU or $REPRO_WORKERS (default: 1)",
    )
    p.add_argument(
        "--cache-dir", default=".repro-cache",
        help="on-disk result cache; pass '' to disable (default: .repro-cache)",
    )
    p.add_argument(
        "--shard", default="",
        help="run only shard I/N of the grid (1-based, e.g. 2/4) and emit "
             "a partial report for 'repro merge'",
    )
    p.add_argument(
        "--claims", action="store_true",
        help="use cache claim files so concurrent sweeps sharing the cache "
             "dir never double-run a config",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="report live executed-count / ETA on stderr",
    )
    p.add_argument(
        "-o", "--output", default="-",
        help="report path, or - for stdout (default: -)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "merge",
        help="combine shard reports (or a shared cache dir) into a full report",
    )
    p.add_argument(
        "shard_reports", nargs="*",
        help="partial reports written by 'repro sweep --shard I/N'",
    )
    p.add_argument(
        "--cache-dir", default="",
        help="merge straight from a shared result cache instead of shard "
             "files (requires the grid flags to match the original sweep)",
    )
    add_grid_args(p)
    p.add_argument(
        "-o", "--output", default="-",
        help="report path, or - for stdout (default: -)",
    )
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser("cache", help="inspect or prune an on-disk result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    p_ls = cache_sub.add_parser(
        "ls", help="summarize cache entries by schema version"
    )
    p_ls.add_argument("--cache-dir", default=".repro-cache")
    p_ls.set_defaults(func=_cmd_cache_ls)
    p_prune = cache_sub.add_parser(
        "prune", help="evict records from stale cache schema versions"
    )
    p_prune.add_argument("--cache-dir", default=".repro-cache")
    p_prune.add_argument(
        "--schema-version", action="append", default=[],
        help="schema version(s) to evict (repeatable or comma-separated)",
    )
    p_prune.add_argument(
        "--stale", action="store_true",
        help="evict everything not produced by the current schema version",
    )
    p_prune.set_defaults(func=_cmd_cache_prune)

    p = sub.add_parser("export-scheme", help="serialize a scheme to JSON")
    p.add_argument("scheme", choices=SCHEME_NAMES)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default="scheme.json")
    p.set_defaults(func=_cmd_export_scheme)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
