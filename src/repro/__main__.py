"""Entry point for ``python -m repro``."""

from .cli import main

try:
    raise SystemExit(main())
except KeyboardInterrupt:
    # Long-lived commands (``repro serve``) end with Ctrl-C in normal
    # operation; exit with the conventional SIGINT status, no traceback.
    raise SystemExit(130)
