"""Stable public facade: ``repro.api``.

Every front-end — the CLI (:mod:`repro.cli`), the experiment harness
(:class:`repro.analysis.experiments.ExperimentRunner`) and the bench
suite — routes through these four entry points, so scripting a custom
scenario uses exactly the code paths the paper figures use:

* :func:`simulate` — one run (cache-aware, memoized),
* :func:`sweep` — a grid or :class:`~repro.specs.ScenarioSpec` to a
  deterministic JSON-safe report (optionally one shard of it),
* :func:`entropy_profile` — the window-based entropy profile of a
  workload, optionally through a mapping scheme (paper Figs. 5/10),
* :func:`compare` — schemes side by side on one workload, with the
  paper's headline metrics normalized to BASE.

All workload / scheme arguments accept a registered name (``"MT"``,
``"PAE"``, or anything added via :mod:`repro.registry`), a spec dict,
or a :class:`~repro.specs.WorkloadSpec` / `SchemeSpec` object::

    import repro.api as api

    custom = SchemeSpec.stages("MYX", [
        {"op": "xor", "target": 8, "sources": [15, 16]},
    ])
    report = api.sweep(benchmarks=["SP"], schemes=["PAE", custom], scale=0.25)

Pass ``runner=`` to share one :class:`~repro.runner.sweep.SweepRunner`
(and its memo/cache/pool) across calls; otherwise each call builds a
throwaway runner from ``workers`` / ``cache_dir``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from .core.entropy import (
    EntropyProfile,
    application_entropy_profile,
    translate_kernel_inputs,
)
from .runner.config import RunConfig, SweepGrid, unique_names
from .runner.faults import FailurePolicy
from .runner.report import render_report, shard_report, sweep_report
from .runner.shard import ShardSpec
from .runner.sweep import SweepRunner, default_workers
from .runner.worker import RunContext, process_context
from .sim.fidelity import EXACT, Fidelity, parse_fidelity
from .sim.results import SimulationResult, perf_per_watt_ratio, speedup
from .specs import ScenarioSpec, SchemeSpec, WorkloadSpec

__all__ = [
    "simulate",
    "sweep",
    "scenario_grid",
    "entropy_profile",
    "compare",
    "run_matrix",
    "render_report",
]

SchemeLike = Union[str, dict, SchemeSpec]
WorkloadLike = Union[str, dict, WorkloadSpec]


def _runner(
    runner: Optional[SweepRunner],
    workers: Optional[int],
    cache_dir,
    policy: Optional[FailurePolicy] = None,
) -> Tuple[SweepRunner, bool]:
    """The runner to use, plus whether this call owns (and must close) it.

    A facade-created runner is closed before returning so a throwaway
    ``workers=N`` call never leaks its process pool; callers who pass
    ``runner=`` keep its pool alive across calls and close it themselves
    (their runner's own failure policy applies — *policy* is for
    facade-created runners only).  With *workers* unset, the
    ``REPRO_WORKERS`` environment variable decides (so CI and launchers
    can fan api calls out without code changes); without it, calls run
    serial in-process.
    """
    if runner is not None:
        return runner, False
    if workers is None and os.environ.get("REPRO_WORKERS", "").strip():
        workers = default_workers()
    return SweepRunner(workers=workers, cache_dir=cache_dir, policy=policy), True


def _config(
    benchmark: WorkloadLike,
    scheme: SchemeLike,
    *,
    seed: int,
    n_sms: int,
    memory: str,
    scale: float,
    window: int,
    profile_scale: Optional[float],
    fidelity: Fidelity = EXACT,
) -> RunConfig:
    return RunConfig(
        benchmark=WorkloadSpec.from_value(benchmark),
        scheme=SchemeSpec.from_value(scheme),
        seed=seed,
        n_sms=n_sms,
        memory=memory,
        scale=scale,
        window=window,
        profile_scale=profile_scale,
        fidelity=fidelity,
    )


def simulate(
    benchmark: WorkloadLike,
    scheme: SchemeLike = "BASE",
    *,
    seed: int = 0,
    n_sms: int = 12,
    memory: str = "gddr5",
    scale: float = 1.0,
    window: int = 12,
    profile_scale: Optional[float] = None,
    fidelity: Fidelity = EXACT,
    runner: Optional[SweepRunner] = None,
    workers: Optional[int] = None,
    cache_dir=None,
) -> SimulationResult:
    """Run one (workload, scheme) scenario and return its result.

    *fidelity* selects the simulation mode: ``"exact"`` (the default,
    byte-identical to the pre-fidelity simulator),
    ``"sampled[:warmup=..,window=..,period=..]"`` /
    :class:`~repro.sim.fidelity.SampledFidelity` for interval-sampled
    approximation, or ``"auto[:exemplars=..,...]"`` /
    :class:`~repro.sim.fidelity.AutoFidelity` for the per-kernel
    planned mode (repeated kernels are replayed functionally and
    estimated from measured exemplars; the plan is shared across all
    schemes of a sweep so figure-12 ratios stay accurate).  See
    :mod:`repro.sim.fidelity`.
    """
    config = _config(
        benchmark, scheme, seed=seed, n_sms=n_sms, memory=memory,
        scale=scale, window=window, profile_scale=profile_scale,
        fidelity=fidelity,
    )
    executor, owned = _runner(runner, workers, cache_dir)
    try:
        return executor.run_one(config)
    finally:
        if owned:
            executor.close()


def run_matrix(
    benchmarks: Iterable[WorkloadLike],
    schemes: Iterable[SchemeLike],
    *,
    seed: int = 0,
    n_sms: int = 12,
    memory: str = "gddr5",
    scale: float = 1.0,
    window: int = 12,
    profile_scale: Optional[float] = None,
    fidelity: Fidelity = EXACT,
    runner: Optional[SweepRunner] = None,
    workers: Optional[int] = None,
    cache_dir=None,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Run a benchmark x scheme matrix; results keyed by display names.

    The whole matrix is handed to the sweep runner as one batch, so
    with ``workers > 1`` the misses simulate in parallel.
    """
    bench_specs = [WorkloadSpec.from_value(b) for b in benchmarks]
    scheme_specs = [SchemeSpec.from_value(s) for s in schemes]
    # Results are keyed by display name; distinct specs sharing one
    # would silently overwrite each other (same hazard SweepGrid guards).
    unique_names(bench_specs, "benchmarks")
    unique_names(scheme_specs, "schemes")
    configs = [
        _config(
            b, s, seed=seed, n_sms=n_sms, memory=memory,
            scale=scale, window=window, profile_scale=profile_scale,
            fidelity=fidelity,
        )
        for b in bench_specs
        for s in scheme_specs
    ]
    executor, owned = _runner(runner, workers, cache_dir)
    try:
        results = executor.run_many(configs)
    finally:
        if owned:
            executor.close()
    keys = [(b.name, s.name) for b in bench_specs for s in scheme_specs]
    return dict(zip(keys, results))


def scenario_grid(
    scenario: Union[ScenarioSpec, SweepGrid, dict]
) -> SweepGrid:
    """Normalize any accepted scenario form to a :class:`SweepGrid`.

    The single coercion every sweep entry point shares — :func:`sweep`
    here, ``repro sweep --spec`` and the ``repro serve`` job intake all
    accept the same three shapes and must keep meaning the same thing:
    a ready grid, a :class:`~repro.specs.ScenarioSpec`, or a scenario
    dict (e.g. ``json.load`` of a spec file / an HTTP request body).
    """
    if isinstance(scenario, SweepGrid):
        return scenario
    if isinstance(scenario, ScenarioSpec):
        return scenario.grid()
    if isinstance(scenario, dict):
        return ScenarioSpec.from_dict(scenario).grid()
    raise TypeError(
        f"scenario must be a ScenarioSpec, SweepGrid or dict, got "
        f"{type(scenario).__name__}"
    )


def sweep(
    scenario: Optional[Union[ScenarioSpec, SweepGrid, dict]] = None,
    *,
    benchmarks: Optional[Sequence[WorkloadLike]] = None,
    schemes: Optional[Sequence[SchemeLike]] = None,
    seeds: Sequence[int] = (0,),
    n_sms: Sequence[int] = (12,),
    memories: Sequence[str] = ("gddr5",),
    scale: float = 1.0,
    window: int = 12,
    fidelity: Fidelity = EXACT,
    shard: Optional[Union[str, ShardSpec]] = None,
    runner: Optional[SweepRunner] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    strict: bool = True,
    policy: Optional[FailurePolicy] = None,
) -> Dict[str, object]:
    """Run a sweep and return the deterministic report dict.

    *scenario* may be a :class:`~repro.specs.ScenarioSpec`, a
    :class:`~repro.runner.config.SweepGrid`, or a scenario dict (e.g.
    ``json.load`` of a ``--spec`` file); alternatively describe the
    grid with the keyword axes.  With *shard* (``"2/4"`` or a
    :class:`ShardSpec`) only that slice runs and a partial shard
    report is returned, mergeable by :func:`repro.runner.report.merge_shard_reports`.

    *strict* (default) raises :class:`~repro.runner.faults.SweepFailure`
    if any config is quarantined by the failure policy — after every
    healthy config completed; ``strict=False`` returns a partial report
    with a ``"failures"`` section instead (the CLI behaviour).
    *policy* is the :class:`~repro.runner.faults.FailurePolicy`
    (retries, timeout) for the facade-created runner.
    """
    if scenario is not None:
        grid = scenario_grid(scenario)
    else:
        axes = dict(
            seeds=tuple(seeds), n_sms=tuple(n_sms),
            memories=tuple(memories), scale=scale, window=window,
            fidelity=parse_fidelity(fidelity),
        )
        if benchmarks is not None:
            axes["benchmarks"] = tuple(benchmarks)
        if schemes is not None:
            axes["schemes"] = tuple(schemes)
        grid = SweepGrid(**axes)
    executor, owned = _runner(runner, workers, cache_dir, policy)
    try:
        if shard is not None:
            spec = shard if isinstance(shard, ShardSpec) else ShardSpec.parse(shard)
            return shard_report(grid, spec, executor, strict=strict)
        return sweep_report(grid, executor, strict=strict)
    finally:
        if owned:
            executor.close()


def entropy_profile(
    benchmark: WorkloadLike,
    *,
    scheme: Optional[SchemeLike] = None,
    seed: int = 0,
    memory: str = "gddr5",
    scale: float = 1.0,
    window: int = 12,
    profile_scale: Optional[float] = None,
    scheme_window: Optional[int] = None,
    context: Optional[RunContext] = None,
) -> EntropyProfile:
    """Window-based entropy profile of a workload (paper Figs. 5/10).

    Without *scheme*, the BASE (unmapped) profile; with one, the
    profile of the *mapped* addresses — one batched GF(2) product over
    the whole trace.  *window* sizes the analysis; *scheme_window*
    (default: *window*) is the suite-profile window an entropy-derived
    scheme like RMP is *built* at — keep it pinned when comparing one
    scheme across several analysis windows, so every profile describes
    the same mapping.  Profiles are memoized on the (shared) process
    :class:`~repro.runner.worker.RunContext`.
    """
    context = context if context is not None else process_context()
    spec = WorkloadSpec.from_value(benchmark)
    if scheme is None:
        return context.entropy_profile(spec, memory, scale, window)
    scheme_spec = SchemeSpec.from_value(scheme)
    built = context.scheme(
        scheme_spec, seed, memory,
        profile_scale if profile_scale is not None else scale,
        scheme_window if scheme_window is not None else window,
    )
    workload = context.workload(spec, scale)
    kernels = translate_kernel_inputs(
        workload.entropy_kernel_inputs(), built.bim.matrix
    )
    return application_entropy_profile(
        kernels, context.address_map(memory), window,
        label=f"{spec.name}/{scheme_spec.name}",
    )


def compare(
    benchmark: WorkloadLike,
    schemes: Iterable[SchemeLike] = ("PM", "PAE"),
    *,
    seed: int = 0,
    n_sms: int = 12,
    memory: str = "gddr5",
    scale: float = 1.0,
    window: int = 12,
    profile_scale: Optional[float] = None,
    fidelity: Fidelity = EXACT,
    runner: Optional[SweepRunner] = None,
    workers: Optional[int] = None,
    cache_dir=None,
) -> Dict[str, Dict[str, float]]:
    """Schemes side by side on one workload, normalized to BASE.

    Returns ``{scheme_name: metrics}`` in input order (BASE first,
    inserted if absent) with the paper's headline metrics: cycles,
    speedup, row-buffer hit rate, channel MLP, DRAM watts, perf/W.
    """
    scheme_specs = [SchemeSpec.from_value(s) for s in schemes]
    base = SchemeSpec.registered("BASE")
    if any(s.name == "BASE" and s != base for s in scheme_specs):
        raise ValueError(
            "a custom scheme may not be named 'BASE': results are "
            "normalized against the registered BASE baseline by name"
        )
    if base not in scheme_specs:
        scheme_specs.insert(0, base)
    results = run_matrix(
        [benchmark], scheme_specs,
        seed=seed, n_sms=n_sms, memory=memory, scale=scale, window=window,
        profile_scale=profile_scale, fidelity=fidelity, runner=runner,
        workers=workers, cache_dir=cache_dir,
    )
    bench_name = WorkloadSpec.from_value(benchmark).name
    base = results[(bench_name, "BASE")]
    table: Dict[str, Dict[str, float]] = {}
    for spec in scheme_specs:
        result = results[(bench_name, spec.name)]
        table[spec.name] = {
            "cycles": result.cycles,
            "speedup": speedup(result, base),
            "row_hit_rate": result.row_hit_rate,
            "channel_parallelism": result.channel_parallelism,
            "dram_power_watts": result.dram_power.total,
            "perf_per_watt": perf_per_watt_ratio(result, base),
        }
    return table
