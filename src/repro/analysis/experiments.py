"""Experiment harness: run matrices of (workload x scheme x config).

Every figure of the paper's evaluation (11-20) is a view over the same
underlying sweep: the 16 benchmarks under the six mapping schemes on
the baseline configuration, plus sensitivity variants (SM count,
3D-stacked memory, alternative BIM seeds).  This module provides:

* :class:`ExperimentRunner` — the bench harness facade.  Simulation
  execution, parallelism and the on-disk result cache live in
  :mod:`repro.runner`; this class adds the entropy-profile helpers the
  figure scripts need and keeps a per-instance memo so independent
  bench files share one sweep,
* the canonical sweep helpers each bench/table is generated from.

All runs are deterministic: workloads and BIM draws are seeded, and
the simulator itself has no randomness.  Pass ``cache_dir`` to persist
results across processes, and ``workers`` to fan cache misses out
across a process pool (see :mod:`repro.runner` for the guarantees).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .. import api
from ..core.address_map import AddressMap
from ..core.entropy import EntropyProfile
from ..core.schemes import SCHEME_NAMES, MappingScheme
from ..runner.sweep import SweepRunner
from ..runner.worker import RunContext
from ..sim.results import SimulationResult, perf_per_watt_ratio, speedup
from ..workloads.base import Workload
from ..workloads.suite import VALLEY_BENCHMARKS

__all__ = [
    "ExperimentRunner",
    "DEFAULT_SCALE",
    "SENSITIVITY_SCALE",
    "harmonic_mean",
    "arithmetic_mean",
]

DEFAULT_SCALE = 1.0
SENSITIVITY_SCALE = 0.5


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (the paper's speedup aggregation)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("harmonic mean of no values")
    if (arr <= 0).any():
        raise ValueError("harmonic mean requires positive values")
    return float(arr.size / (1.0 / arr).sum())


def arithmetic_mean(values: Sequence[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean of no values")
    return float(arr.mean())


class ExperimentRunner:
    """Builds and memoizes simulation runs for the bench harness.

    One instance is typically shared per process (the benchmarks use a
    session-scoped fixture) so that e.g. Fig. 12 and Fig. 15 reuse the
    same simulations.  Internally it delegates execution to a
    :class:`~repro.runner.sweep.SweepRunner` — give it ``cache_dir``
    and/or ``workers`` to get disk caching and parallel sweeps.
    """

    def __init__(
        self,
        scale: float = DEFAULT_SCALE,
        window: int = 12,
        cache_dir=None,
        workers: Optional[int] = None,
    ) -> None:
        self.scale = scale
        self.window = window
        self._context = RunContext()
        self._sweeper = SweepRunner(
            workers=workers, cache_dir=cache_dir, context=self._context
        )

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def workload(self, benchmark: str, scale: Optional[float] = None) -> Workload:
        return self._context.workload(
            benchmark.upper(), scale if scale is not None else self.scale
        )

    def address_map(self, memory: str = "gddr5") -> AddressMap:
        return self._context.address_map(memory)

    def suite_average_entropy(self, memory: str = "gddr5") -> np.ndarray:
        """Per-bit average window entropy across the full suite.

        This is what the paper's RMP is built from: "we first gather
        the entropy of all our GPU-compute benchmarks and aggregate
        this into a global entropy profile" (Section IV-B).
        """
        return self._context.suite_average_entropy(memory, self.scale, self.window)

    def scheme(self, name: str, seed: int = 0, memory: str = "gddr5") -> MappingScheme:
        return self._context.scheme(name, seed, memory, self.scale, self.window)

    def entropy_profile(
        self, benchmark: str, window: Optional[int] = None, memory: str = "gddr5"
    ) -> EntropyProfile:
        """Window-based entropy profile of a benchmark (BASE addresses).

        Served from the run context's memo, which RMP construction
        shares — a bench session computes each profile once.
        """
        w = window if window is not None else self.window
        return self._context.entropy_profile(benchmark, memory, self.scale, w)

    def mapped_entropy_profile(
        self, benchmark: str, scheme_name: str, seed: int = 0,
        window: Optional[int] = None,
    ) -> EntropyProfile:
        """Entropy profile of the *mapped* addresses (paper Fig. 10)."""
        return api.entropy_profile(
            benchmark,
            scheme=scheme_name,
            seed=seed,
            scale=self.scale,
            window=window if window is not None else self.window,
            profile_scale=self.scale,
            # The scheme itself is always the one run()/sweep() simulate
            # (built at the runner's window), even when the *analysis*
            # window is overridden for this one profile.
            scheme_window=self.window,
            context=self._context,
        )

    # ------------------------------------------------------------------
    # Running (routed through the stable repro.api facade)
    # ------------------------------------------------------------------
    def run(
        self,
        benchmark: str,
        scheme_name: str,
        seed: int = 0,
        n_sms: int = 12,
        memory: str = "gddr5",
        scale: Optional[float] = None,
    ) -> SimulationResult:
        """Run (memoized) one simulation."""
        return api.simulate(
            benchmark, scheme_name,
            seed=seed, n_sms=n_sms, memory=memory,
            scale=scale if scale is not None else self.scale,
            window=self.window,
            # RMP's suite profile is always built at the runner's scale,
            # even when one run overrides the trace scale.
            profile_scale=self.scale,
            runner=self._sweeper,
        )

    def sweep(
        self,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        schemes: Iterable[str] = SCHEME_NAMES,
        **kwargs,
    ) -> Dict[Tuple[str, str], SimulationResult]:
        """Run a benchmark x scheme matrix (memoized, batched).

        The whole matrix is handed to the sweep runner as one batch, so
        with ``workers > 1`` the misses simulate in parallel.
        """
        benchmarks = list(benchmarks)
        schemes = list(schemes)
        if kwargs.get("scale") is None:  # absent or explicit None
            kwargs["scale"] = self.scale
        return api.run_matrix(
            benchmarks, schemes,
            window=self.window, profile_scale=self.scale,
            runner=self._sweeper, **kwargs,
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def speedups(
        self,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        schemes: Iterable[str] = SCHEME_NAMES,
        **kwargs,
    ) -> Dict[Tuple[str, str], float]:
        """Speedup over BASE per (benchmark, scheme) — Fig. 12/20."""
        benchmarks = [b.upper() for b in benchmarks]
        schemes = [s.upper() for s in schemes]
        results = self.sweep(
            benchmarks, sorted(set(schemes + ["BASE"])), **kwargs
        )
        return {
            (b, s): speedup(results[(b, s)], results[(b, "BASE")])
            for b in benchmarks
            for s in schemes
        }

    def mean_speedup(
        self, scheme_name: str,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        aggregate=harmonic_mean,
        **kwargs,
    ) -> float:
        ups = self.speedups(benchmarks, [scheme_name], **kwargs)
        return aggregate(list(ups.values()))

    def perf_per_watt(
        self,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        schemes: Iterable[str] = SCHEME_NAMES,
        **kwargs,
    ) -> Dict[Tuple[str, str], float]:
        """Perf/Watt normalized to BASE — Fig. 17."""
        benchmarks = [b.upper() for b in benchmarks]
        schemes = [s.upper() for s in schemes]
        results = self.sweep(
            benchmarks, sorted(set(schemes + ["BASE"])), **kwargs
        )
        return {
            (b, s): perf_per_watt_ratio(results[(b, s)], results[(b, "BASE")])
            for b in benchmarks
            for s in schemes
        }

    def dram_power_ratio(
        self, scheme_name: str, benchmarks: Iterable[str] = VALLEY_BENCHMARKS, **kwargs
    ) -> float:
        """Mean DRAM power relative to BASE — Fig. 11's x axis."""
        ratios = []
        for b in benchmarks:
            base = self.run(b, "BASE", **kwargs)
            res = self.run(b, scheme_name, **kwargs)
            ratios.append(res.dram_power.total / base.dram_power.total)
        return arithmetic_mean(ratios)

    def cached_runs(self) -> int:
        """Distinct simulation results memoized in this process."""
        return self._sweeper.cached_runs()

    @property
    def sweep_stats(self):
        """Hit/miss accounting of the underlying sweep runner."""
        return self._sweeper.stats
