"""Experiment harness: run matrices of (workload x scheme x config).

Every figure of the paper's evaluation (11-20) is a view over the same
underlying sweep: the 16 benchmarks under the six mapping schemes on
the baseline configuration, plus sensitivity variants (SM count,
3D-stacked memory, alternative BIM seeds).  This module provides:

* :class:`ExperimentRunner` — builds schemes/configs, runs simulations
  and memoizes results so independent bench files can share one sweep,
* the canonical sweep helpers each bench/table is generated from.

All runs are deterministic: workloads and BIM draws are seeded, and
the simulator itself has no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.address_map import AddressMap, hynix_gddr5_map
from ..core.entropy import EntropyProfile, application_entropy_profile
from ..core.schemes import SCHEME_NAMES, MappingScheme, build_scheme
from ..dram.stacked import stacked_memory_config
from ..dram.timing import DRAMTiming, gddr5_timing
from ..gpu.config import GPUConfig, baseline_config, config_with_sms
from ..sim.gpu_system import GPUSystem
from ..sim.results import SimulationResult, perf_per_watt_ratio, speedup
from ..workloads.base import Workload
from ..workloads.suite import (
    ALL_BENCHMARKS,
    NON_VALLEY_BENCHMARKS,
    VALLEY_BENCHMARKS,
    build_workload,
)

__all__ = [
    "ExperimentRunner",
    "DEFAULT_SCALE",
    "SENSITIVITY_SCALE",
    "harmonic_mean",
    "arithmetic_mean",
]

DEFAULT_SCALE = 1.0
SENSITIVITY_SCALE = 0.5


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (the paper's speedup aggregation)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("harmonic mean of no values")
    if (arr <= 0).any():
        raise ValueError("harmonic mean requires positive values")
    return float(arr.size / (1.0 / arr).sum())


def arithmetic_mean(values: Sequence[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean of no values")
    return float(arr.mean())


@dataclass(frozen=True)
class _RunKey:
    benchmark: str
    scheme: str
    seed: int
    n_sms: int
    memory: str  # "gddr5" | "stacked"
    scale: float


class ExperimentRunner:
    """Builds and memoizes simulation runs for the bench harness.

    One instance is typically shared per process (the benchmarks use a
    module-level singleton) so that e.g. Fig. 12 and Fig. 15 reuse the
    same simulations.
    """

    def __init__(self, scale: float = DEFAULT_SCALE, window: int = 12) -> None:
        self.scale = scale
        self.window = window
        self._results: Dict[_RunKey, SimulationResult] = {}
        self._workloads: Dict[Tuple[str, float], Workload] = {}
        self._profiles: Dict[Tuple[str, int], EntropyProfile] = {}
        self._gddr5_map = hynix_gddr5_map()
        self._stacked = stacked_memory_config()
        self._suite_profile: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def workload(self, benchmark: str, scale: Optional[float] = None) -> Workload:
        key = (benchmark, scale if scale is not None else self.scale)
        if key not in self._workloads:
            self._workloads[key] = build_workload(benchmark, scale=key[1])
        return self._workloads[key]

    def address_map(self, memory: str = "gddr5") -> AddressMap:
        if memory == "gddr5":
            return self._gddr5_map
        if memory == "stacked":
            return self._stacked.address_map
        raise ValueError(f"unknown memory kind {memory!r}")

    def suite_average_entropy(self, memory: str = "gddr5") -> np.ndarray:
        """Per-bit average window entropy across the full suite.

        This is what the paper's RMP is built from: "we first gather
        the entropy of all our GPU-compute benchmarks and aggregate
        this into a global entropy profile" (Section IV-B).
        """
        if self._suite_profile is None:
            self._suite_profile = {}
        if memory not in self._suite_profile:
            from ..core.entropy import average_entropy_profile

            profiles = [self.entropy_profile(b, memory=memory) for b in ALL_BENCHMARKS]
            self._suite_profile[memory] = average_entropy_profile(profiles)
        return self._suite_profile[memory]

    def scheme(self, name: str, seed: int = 0, memory: str = "gddr5") -> MappingScheme:
        entropy_by_bit = None
        if name.upper() == "RMP":
            entropy_by_bit = self.suite_average_entropy(memory)
        return build_scheme(
            name, self.address_map(memory), seed=seed, entropy_by_bit=entropy_by_bit
        )

    def entropy_profile(
        self, benchmark: str, window: Optional[int] = None, memory: str = "gddr5"
    ) -> EntropyProfile:
        """Window-based entropy profile of a benchmark (BASE addresses)."""
        w = window if window is not None else self.window
        key = (benchmark, w, memory)
        if key not in self._profiles:
            workload = self.workload(benchmark)
            self._profiles[key] = application_entropy_profile(
                workload.entropy_kernel_inputs(), self.address_map(memory), w,
                label=benchmark,
            )
        return self._profiles[key]

    def mapped_entropy_profile(
        self, benchmark: str, scheme_name: str, seed: int = 0,
        window: Optional[int] = None,
    ) -> EntropyProfile:
        """Entropy profile of the *mapped* addresses (paper Fig. 10)."""
        w = window if window is not None else self.window
        workload = self.workload(benchmark)
        scheme = self.scheme(scheme_name, seed=seed)
        kernels = []
        for tb_arrays, weight in workload.entropy_kernel_inputs():
            mapped = [np.atleast_1d(scheme.map(a)) for a in tb_arrays]
            kernels.append((mapped, weight))
        return application_entropy_profile(
            kernels, self._gddr5_map, w, label=f"{benchmark}/{scheme_name}"
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        benchmark: str,
        scheme_name: str,
        seed: int = 0,
        n_sms: int = 12,
        memory: str = "gddr5",
        scale: Optional[float] = None,
    ) -> SimulationResult:
        """Run (memoized) one simulation."""
        actual_scale = scale if scale is not None else self.scale
        key = _RunKey(benchmark, scheme_name, seed, n_sms, memory, actual_scale)
        if key in self._results:
            return self._results[key]
        workload = self.workload(benchmark, actual_scale)
        scheme = self.scheme(scheme_name, seed=seed, memory=memory)
        if memory == "gddr5":
            timing: DRAMTiming = gddr5_timing()
            power_params = None
        else:
            timing = self._stacked.timing
            power_params = self._stacked.power_params
        config = config_with_sms(n_sms)
        system = GPUSystem(
            scheme, config=config, timing=timing, dram_power_params=power_params
        )
        result = system.run(workload)
        self._results[key] = result
        return result

    def sweep(
        self,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        schemes: Iterable[str] = SCHEME_NAMES,
        **kwargs,
    ) -> Dict[Tuple[str, str], SimulationResult]:
        """Run a benchmark x scheme matrix (memoized)."""
        out: Dict[Tuple[str, str], SimulationResult] = {}
        for benchmark in benchmarks:
            for scheme_name in schemes:
                out[(benchmark, scheme_name)] = self.run(benchmark, scheme_name, **kwargs)
        return out

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def speedups(
        self,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        schemes: Iterable[str] = SCHEME_NAMES,
        **kwargs,
    ) -> Dict[Tuple[str, str], float]:
        """Speedup over BASE per (benchmark, scheme) — Fig. 12/20."""
        benchmarks = list(benchmarks)
        results = self.sweep(benchmarks, list(set(list(schemes) + ["BASE"])), **kwargs)
        return {
            (b, s): speedup(results[(b, s)], results[(b, "BASE")])
            for b in benchmarks
            for s in schemes
        }

    def mean_speedup(
        self, scheme_name: str,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        aggregate=harmonic_mean,
        **kwargs,
    ) -> float:
        ups = self.speedups(benchmarks, [scheme_name], **kwargs)
        return aggregate(list(ups.values()))

    def perf_per_watt(
        self,
        benchmarks: Iterable[str] = VALLEY_BENCHMARKS,
        schemes: Iterable[str] = SCHEME_NAMES,
        **kwargs,
    ) -> Dict[Tuple[str, str], float]:
        """Perf/Watt normalized to BASE — Fig. 17."""
        benchmarks = list(benchmarks)
        results = self.sweep(benchmarks, list(set(list(schemes) + ["BASE"])), **kwargs)
        return {
            (b, s): perf_per_watt_ratio(results[(b, s)], results[(b, "BASE")])
            for b in benchmarks
            for s in schemes
        }

    def dram_power_ratio(
        self, scheme_name: str, benchmarks: Iterable[str] = VALLEY_BENCHMARKS, **kwargs
    ) -> float:
        """Mean DRAM power relative to BASE — Fig. 11's x axis."""
        ratios = []
        for b in benchmarks:
            base = self.run(b, "BASE", **kwargs)
            res = self.run(b, scheme_name, **kwargs)
            ratios.append(res.dram_power.total / base.dram_power.total)
        return arithmetic_mean(ratios)

    def cached_runs(self) -> int:
        return len(self._results)
