"""Fixed-width table and series printers for the bench harness.

Every benchmark file regenerates one of the paper's tables or figures
as text: a figure becomes the series of values its bars/lines plot.
These helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["format_table", "format_series", "format_grouped_bars", "banner"]


def banner(title: str, width: int = 72) -> str:
    """A visually distinct section header."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width text table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append([
            floatfmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_series(
    label: str, points: Sequence[Tuple[object, float]], floatfmt: str = "{:.3f}"
) -> str:
    """Render an (x, y) series — one figure line/curve — as text."""
    cells = ", ".join(f"{x}={floatfmt.format(y)}" for x, y in points)
    return f"{label}: {cells}"


def format_grouped_bars(
    group_names: Sequence[str],
    bar_names: Sequence[str],
    values: Mapping[Tuple[str, str], float],
    value_header: str = "value",
    floatfmt: str = "{:.3f}",
) -> str:
    """Render a grouped-bar figure (benchmark x scheme) as a table."""
    rows = []
    for group in group_names:
        row: List[object] = [group]
        for bar in bar_names:
            row.append(float(values[(group, bar)]))
        rows.append(row)
    return format_table([value_header] + list(bar_names), rows, floatfmt)
