"""System-level (GPU + DRAM) power and efficiency views.

The paper's Fig. 17 normalizes performance per Watt of *total system
power* to the BASE mapping; Fig. 11 plots execution time against
*DRAM* power.  The heavy lifting lives in the simulation results and
the per-domain power models — this module provides the comparison
views the benches print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from ..sim.results import SimulationResult, perf_per_watt_ratio, speedup

__all__ = ["PowerComparison", "compare_to_base", "normalized_views"]


@dataclass(frozen=True)
class PowerComparison:
    """One scheme's run measured against its BASE run."""

    workload: str
    scheme: str
    speedup: float
    dram_power_ratio: float
    system_power_ratio: float
    perf_per_watt_ratio: float
    activate_ratio: float

    def __str__(self) -> str:
        return (
            f"{self.workload}/{self.scheme}: {self.speedup:.2f}x speed, "
            f"DRAM power x{self.dram_power_ratio:.2f}, "
            f"perf/W x{self.perf_per_watt_ratio:.2f}"
        )


def compare_to_base(
    result: SimulationResult, base: SimulationResult
) -> PowerComparison:
    """Normalize one run against its BASE-mapping run (same workload)."""
    activate_ratio = (
        result.dram_activates / base.dram_activates if base.dram_activates else 1.0
    )
    return PowerComparison(
        workload=result.workload,
        scheme=result.scheme,
        speedup=speedup(result, base),
        dram_power_ratio=result.dram_power.total / base.dram_power.total,
        system_power_ratio=result.system_power / base.system_power,
        perf_per_watt_ratio=perf_per_watt_ratio(result, base),
        activate_ratio=activate_ratio,
    )


def normalized_views(
    results: Mapping[Tuple[str, str], SimulationResult],
    benchmarks: Sequence[str],
    schemes: Sequence[str],
) -> Dict[Tuple[str, str], PowerComparison]:
    """Comparison records for a whole benchmark x scheme sweep."""
    out: Dict[Tuple[str, str], PowerComparison] = {}
    for benchmark in benchmarks:
        base = results[(benchmark, "BASE")]
        for scheme in schemes:
            out[(benchmark, scheme)] = compare_to_base(results[(benchmark, scheme)], base)
    return out
