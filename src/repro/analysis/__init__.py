"""Experiment harness, power comparisons and report formatting."""

from .experiments import (
    DEFAULT_SCALE,
    SENSITIVITY_SCALE,
    ExperimentRunner,
    arithmetic_mean,
    harmonic_mean,
)
from .power import PowerComparison, compare_to_base, normalized_views
from .report import banner, format_grouped_bars, format_series, format_table

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentRunner",
    "PowerComparison",
    "SENSITIVITY_SCALE",
    "arithmetic_mean",
    "banner",
    "compare_to_base",
    "format_grouped_bars",
    "format_series",
    "format_table",
    "harmonic_mean",
    "normalized_views",
]
